/**
 * @file
 * Unit tests for the set-associative LRU cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace pargpu;

namespace
{

CacheConfig
smallCache(Bytes size = 1024, unsigned assoc = 2, unsigned line = 64)
{
    CacheConfig c;
    c.size_bytes = size;
    c.assoc = assoc;
    c.line_bytes = line;
    return c;
}

} // namespace

TEST(CacheTest, GeometryDerivedFromConfig)
{
    SetAssocCache cache(smallCache(1024, 2, 64));
    EXPECT_EQ(cache.numSets(), 8u); // 16 lines / 2 ways.
}

TEST(CacheTest, FirstAccessMissesSecondHits)
{
    SetAssocCache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheTest, SameLineDifferentOffsetHits)
{
    SetAssocCache cache(smallCache());
    cache.access(0x1000);
    EXPECT_TRUE(cache.access(0x103F)); // Same 64-byte line.
    EXPECT_FALSE(cache.access(0x1040)); // Next line.
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed)
{
    // 2-way cache: three distinct tags mapping to the same set.
    SetAssocCache cache(smallCache(1024, 2, 64));
    // Set stride = num_sets * line = 8 * 64 = 512.
    Addr a = 0x0, b = 0x200, c = 0x400; // All map to set 0.
    cache.access(a);
    cache.access(b);
    cache.access(a);      // a is now MRU.
    cache.access(c);      // Evicts b (LRU).
    EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(b)); // b was evicted.
}

TEST(CacheTest, ProbeDoesNotDisturbState)
{
    SetAssocCache cache(smallCache());
    cache.access(0x1000);
    std::uint64_t hits = cache.hits(), misses = cache.misses();
    EXPECT_TRUE(cache.probe(0x1000));
    EXPECT_FALSE(cache.probe(0x9000));
    EXPECT_EQ(cache.hits(), hits);
    EXPECT_EQ(cache.misses(), misses);
}

TEST(CacheTest, FlushInvalidatesAllLines)
{
    SetAssocCache cache(smallCache());
    cache.access(0x1000);
    cache.access(0x2000);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.probe(0x2000));
    // Stats survive a flush.
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheTest, HitRateComputation)
{
    SetAssocCache cache(smallCache());
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.0);
    cache.access(0x0);
    cache.access(0x0);
    cache.access(0x0);
    cache.access(0x0);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
}

TEST(CacheTest, WorkingSetWithinCapacityAllHitsOnSecondPass)
{
    SetAssocCache cache(smallCache(4096, 4, 64)); // 64 lines.
    for (Addr a = 0; a < 4096; a += 64)
        cache.access(a);
    for (Addr a = 0; a < 4096; a += 64)
        EXPECT_TRUE(cache.access(a)) << "addr " << a;
}

TEST(CacheTest, StreamingLargerThanCapacityThrashes)
{
    SetAssocCache cache(smallCache(1024, 2, 64)); // 16 lines.
    // Stream 64 distinct lines twice; with LRU nothing survives.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 64 * 64; a += 64)
            cache.access(a);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 128u);
}

TEST(CacheDeathTest, RejectsNonPowerOfTwoLine)
{
    CacheConfig c = smallCache(1024, 2, 48);
    EXPECT_EXIT({ SetAssocCache cache(c); }, testing::ExitedWithCode(1),
                "power of two");
}

TEST(CacheDeathTest, RejectsZeroAssoc)
{
    CacheConfig c = smallCache(1024, 0, 64);
    EXPECT_EXIT({ SetAssocCache cache(c); }, testing::ExitedWithCode(1),
                "associativity");
}

class CacheGeometryTest
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometryTest, FillThenRevisitHitsForAnyGeometry)
{
    auto [size_kb, assoc] = GetParam();
    SetAssocCache cache(
        smallCache(static_cast<Bytes>(size_kb) * 1024, assoc, 64));
    Bytes lines = cache.config().size_bytes / 64;
    for (Addr a = 0; a < lines * 64; a += 64)
        cache.access(a);
    std::uint64_t pre_hits = cache.hits();
    for (Addr a = 0; a < lines * 64; a += 64)
        cache.access(a);
    EXPECT_EQ(cache.hits() - pre_hits, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 2),
                    std::make_tuple(16, 4), std::make_tuple(128, 8),
                    std::make_tuple(64, 16)));
