/**
 * @file
 * Unit tests for the DRAM channel/bank model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace pargpu;

TEST(DramTest, FirstAccessIsRowMiss)
{
    DramModel dram{DramConfig{}};
    DramResult r = dram.read(0x1000, 0);
    EXPECT_FALSE(r.row_hit);
    EXPECT_GT(r.complete, 0u);
}

TEST(DramTest, SecondAccessToSameRowHits)
{
    // Lines are interleaved across channels, so the next line on the
    // SAME channel/bank is channels * banks * line_bytes away.
    DramConfig cfg;
    DramModel dram(cfg);
    Addr same_bank_next_line =
        cfg.line_bytes * cfg.channels * cfg.banks;
    dram.read(0x0, 0);
    DramResult r = dram.read(same_bank_next_line, 200);
    EXPECT_TRUE(r.row_hit);
}

TEST(DramTest, RowHitIsFasterThanRowMiss)
{
    DramConfig cfg;
    DramModel dram(cfg);
    DramResult miss = dram.read(0x0, 0);
    Cycle miss_latency = miss.complete - 0;
    // Same channel + bank: next line is channels * banks * lines away;
    // another row of that bank is channels * banks * row_bytes away.
    Addr same_bank_next_line =
        cfg.line_bytes * cfg.channels * cfg.banks;
    Addr same_bank_other_row =
        cfg.row_bytes * cfg.channels * cfg.banks * 4;
    Cycle t1 = miss.complete;
    DramResult hit = dram.read(same_bank_next_line, t1);
    Cycle hit_latency = hit.complete - t1;
    DramResult miss2 = dram.read(same_bank_other_row, hit.complete);
    Cycle miss2_latency = miss2.complete - hit.complete;
    EXPECT_LT(hit_latency, miss2_latency);
    EXPECT_LE(hit_latency, miss_latency);
}

TEST(DramTest, BankConflictSerializes)
{
    DramConfig cfg;
    DramModel dram(cfg);
    // Two concurrent reads to the same bank, different rows.
    Addr a = 0x0;
    Addr b = cfg.row_bytes * cfg.channels * cfg.banks;
    DramResult r1 = dram.read(a, 0);
    DramResult r2 = dram.read(b, 0);
    // r2 must wait for the bank to free.
    EXPECT_GT(r2.complete, r1.complete);
}

TEST(DramTest, DifferentChannelsProceedInParallel)
{
    DramConfig cfg;
    DramModel dram(cfg);
    // Line-interleaving: consecutive lines land on different channels.
    DramResult r1 = dram.read(0 * cfg.line_bytes, 0);
    DramResult r2 = dram.read(1 * cfg.line_bytes, 0);
    EXPECT_EQ(r1.complete, r2.complete); // Same latency, no serialization.
}

TEST(DramTest, TrafficCountersAdvance)
{
    DramConfig cfg;
    DramModel dram(cfg);
    dram.read(0x0, 0);
    dram.read(0x40, 0);
    EXPECT_EQ(dram.reads(), 2u);
    EXPECT_EQ(dram.bytesRead(), 2 * cfg.line_bytes);
    dram.write(0x1000, 256, 0);
    EXPECT_EQ(dram.bytesWritten(), 256u);
}

TEST(DramTest, RowHitRate)
{
    DramConfig cfg;
    DramModel dram(cfg);
    Addr stride = cfg.line_bytes * cfg.channels * cfg.banks;
    dram.read(0x0, 0);           // miss
    dram.read(stride, 200);      // hit (same bank, same row)
    dram.read(2 * stride, 400);  // hit
    EXPECT_NEAR(dram.rowHitRate(), 2.0 / 3.0, 1e-9);
}

TEST(DramTest, ResetStateClosesRowsButKeepsStats)
{
    DramModel dram{DramConfig{}};
    dram.read(0x0, 0);
    dram.resetState();
    DramResult r = dram.read(0x40, 0);
    EXPECT_FALSE(r.row_hit); // Row buffer was closed.
    EXPECT_EQ(dram.reads(), 2u);
}

TEST(DramTest, SequentialStreamMostlyRowHits)
{
    DramConfig cfg;
    DramModel dram(cfg);
    Cycle now = 0;
    for (Addr a = 0; a < 64 * 1024; a += cfg.line_bytes)
        now = dram.read(a, now).complete;
    // A linear sweep should enjoy a high row-buffer hit rate.
    EXPECT_GT(dram.rowHitRate(), 0.85);
}

TEST(DramDeathTest, RejectsZeroChannels)
{
    DramConfig cfg;
    cfg.channels = 0;
    EXPECT_EXIT({ DramModel dram(cfg); }, testing::ExitedWithCode(1),
                "channel");
}
