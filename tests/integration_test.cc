/**
 * @file
 * Cross-module integration tests: full game traces through the harness,
 * checking the relationships the paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace pargpu;

namespace
{

// Small shared trace so the suite stays fast.
const GameTrace &
smallTrace()
{
    static GameTrace t = buildGameTrace(GameId::HL2, 320, 240, 1);
    return t;
}

RunResult
run(DesignScenario s, float threshold = 0.4f)
{
    RunConfig cfg;
    cfg.scenario = s;
    cfg.threshold = threshold;
    return runTrace(smallTrace(), cfg);
}

} // namespace

TEST(IntegrationTest, BaselineQualityIsPerfectAgainstItself)
{
    RunResult base = run(DesignScenario::Baseline);
    EXPECT_NEAR(base.mssimAgainst(base.images), 1.0, 1e-9);
}

TEST(IntegrationTest, DisablingAfDegradesQuality)
{
    RunResult base = run(DesignScenario::Baseline);
    RunResult noaf = run(DesignScenario::NoAF);
    double q = noaf.mssimAgainst(base.images);
    EXPECT_LT(q, 0.99); // Visibly different...
    EXPECT_GT(q, 0.3);  // ... but not unrelated images.
}

TEST(IntegrationTest, PatuQualityBeatsNoAf)
{
    RunResult base = run(DesignScenario::Baseline);
    RunResult noaf = run(DesignScenario::NoAF);
    RunResult patu = run(DesignScenario::Patu, 0.4f);
    EXPECT_GT(patu.mssimAgainst(base.images),
              noaf.mssimAgainst(base.images));
}

TEST(IntegrationTest, PatuFasterThanBaseline)
{
    RunResult base = run(DesignScenario::Baseline);
    RunResult patu = run(DesignScenario::Patu, 0.4f);
    EXPECT_LT(patu.avg_cycles, base.avg_cycles);
}

TEST(IntegrationTest, PatuSavesEnergy)
{
    RunResult base = run(DesignScenario::Baseline);
    RunResult patu = run(DesignScenario::Patu, 0.4f);
    EXPECT_LT(patu.total_energy_nj, base.total_energy_nj);
}

TEST(IntegrationTest, LodShiftFixImprovesQualityOverPlainPrediction)
{
    // Fig. 19's key comparison: PATU recovers quality lost by
    // AF-SSIM(N)+(Txds) via LOD reuse.
    RunResult base = run(DesignScenario::Baseline);
    RunResult plain = run(DesignScenario::AfSsimNTxds, 0.4f);
    RunResult patu = run(DesignScenario::Patu, 0.4f);
    EXPECT_GT(patu.mssimAgainst(base.images),
              plain.mssimAgainst(base.images));
}

TEST(IntegrationTest, TxdsStageApproximatesMorePixelsThanNOnly)
{
    RunResult n_only = run(DesignScenario::AfSsimN, 0.4f);
    RunResult n_txds = run(DesignScenario::AfSsimNTxds, 0.4f);
    double fetched_n = sumOver(n_only.frames, &FrameStats::texels);
    double fetched_nt = sumOver(n_txds.frames, &FrameStats::texels);
    EXPECT_LT(fetched_nt, fetched_n);
}

TEST(IntegrationTest, ThresholdMonotonicityInWork)
{
    // Higher threshold -> fewer approximations -> more texels fetched.
    double prev = -1.0;
    for (float t : {0.0f, 0.4f, 0.8f, 1.0f}) {
        RunResult r = run(DesignScenario::Patu, t);
        double texels = sumOver(r.frames, &FrameStats::texels);
        EXPECT_GE(texels, prev) << "threshold " << t;
        prev = texels;
    }
}

TEST(IntegrationTest, SharedSampleFractionIsSubstantial)
{
    // Fig. 12: a large share of AF input samples reuse texel sets.
    RunResult base = run(DesignScenario::Baseline);
    double shared = sumOver(base.frames, &FrameStats::shared_samples);
    double total = sumOver(base.frames, &FrameStats::af_input_samples);
    ASSERT_GT(total, 0.0);
    EXPECT_GT(shared / total, 0.2);
}

TEST(IntegrationTest, QuadDivergenceIsRare)
{
    // Section V-C(1): ~1 % of quads diverge.
    RunResult patu = run(DesignScenario::Patu, 0.4f);
    double div = sumOver(patu.frames, &FrameStats::divergent_quads);
    double quads = sumOver(patu.frames, &FrameStats::af_quads);
    ASSERT_GT(quads, 0.0);
    EXPECT_LT(div / quads, 0.10);
}

TEST(IntegrationTest, RunnerKeepsPerFrameData)
{
    GameTrace t = buildGameTrace(GameId::Wolf, 160, 120, 3);
    RunConfig cfg;
    cfg.scenario = DesignScenario::Baseline;
    RunResult r = runTrace(t, cfg);
    EXPECT_EQ(r.frames.size(), 3u);
    EXPECT_EQ(r.images.size(), 3u);
    EXPECT_EQ(frameCycles(r).size(), 3u);
    RunConfig no_img = cfg;
    no_img.keep_images = false;
    RunResult r2 = runTrace(t, no_img);
    EXPECT_TRUE(r2.images.empty());
}

TEST(IntegrationTest, CacheScalingInteractsWithPatu)
{
    RunConfig small;
    small.scenario = DesignScenario::Patu;
    RunConfig big = small;
    big.llc_scale = 4;
    RunResult rs = runTrace(smallTrace(), small);
    RunResult rb = runTrace(smallTrace(), big);
    // More LLC can only help (or leave unchanged) frame time.
    EXPECT_LE(rb.avg_cycles, rs.avg_cycles * 1.02);
}
