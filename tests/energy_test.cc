/**
 * @file
 * Unit tests for the energy/power model.
 */

#include <gtest/gtest.h>

#include "power/energy.hh"

using namespace pargpu;

namespace
{

FrameStats
baseStats()
{
    FrameStats s;
    s.total_cycles = 1'000'000;
    s.shader_busy_cycles = 400'000;
    s.trilinear_samples = 100'000;
    s.addr_ops = 800'000;
    s.table_accesses = 0;
    s.l1_hits = 500'000;
    s.l1_misses = 50'000;
    s.llc_hits = 40'000;
    s.llc_misses = 10'000;
    s.dram_reads = 10'000;
    s.dram_row_hits = 8'000;
    s.traffic_texture = 10'000 * 64;
    return s;
}

} // namespace

TEST(EnergyTest, AllComponentsNonNegative)
{
    EnergyBreakdown e = computeEnergy(baseStats());
    EXPECT_GE(e.shader_nj, 0.0);
    EXPECT_GE(e.filter_nj, 0.0);
    EXPECT_GE(e.table_nj, 0.0);
    EXPECT_GE(e.cache_nj, 0.0);
    EXPECT_GE(e.dram_nj, 0.0);
    EXPECT_GT(e.static_nj, 0.0);
    EXPECT_GT(e.total_nj(), 0.0);
}

TEST(EnergyTest, TotalIsSumOfComponents)
{
    EnergyBreakdown e = computeEnergy(baseStats());
    double sum = e.shader_nj + e.filter_nj + e.table_nj + e.cache_nj +
        e.dram_nj + e.static_nj;
    EXPECT_DOUBLE_EQ(e.total_nj(), sum);
}

TEST(EnergyTest, MoreTexelWorkCostsMoreEnergy)
{
    FrameStats a = baseStats();
    FrameStats b = baseStats();
    b.trilinear_samples *= 4;
    b.addr_ops *= 4;
    b.l1_hits *= 4;
    EXPECT_GT(computeEnergy(b).total_nj(), computeEnergy(a).total_nj());
}

TEST(EnergyTest, ShorterFrameCostsLessStaticEnergy)
{
    FrameStats a = baseStats();
    FrameStats b = baseStats();
    b.total_cycles /= 2;
    EnergyBreakdown ea = computeEnergy(a);
    EnergyBreakdown eb = computeEnergy(b);
    EXPECT_NEAR(eb.static_nj, ea.static_nj / 2, 1e-9);
}

TEST(EnergyTest, TableEnergyOnlyWhenAccessed)
{
    FrameStats s = baseStats();
    EXPECT_DOUBLE_EQ(computeEnergy(s).table_nj, 0.0);
    s.table_accesses = 1000;
    EXPECT_GT(computeEnergy(s).table_nj, 0.0);
}

TEST(EnergyTest, RowMissesCostActivationEnergy)
{
    FrameStats hits = baseStats();
    hits.dram_row_hits = hits.dram_reads; // All hits.
    FrameStats misses = baseStats();
    misses.dram_row_hits = 0;
    EXPECT_GT(computeEnergy(misses).dram_nj,
              computeEnergy(hits).dram_nj);
}

TEST(EnergyTest, CustomParamsScaleComponents)
{
    FrameStats s = baseStats();
    EnergyParams cheap;
    cheap.trilinear_pj = 1.0;
    EnergyParams costly;
    costly.trilinear_pj = 100.0;
    EXPECT_GT(computeEnergy(s, costly).filter_nj,
              computeEnergy(s, cheap).filter_nj);
}

TEST(PowerTest, AveragePowerMatchesEnergyOverTime)
{
    FrameStats s = baseStats();
    EnergyBreakdown e = computeEnergy(s);
    double w = averagePowerW(e, s, 1.0);
    // P = E / t; t = 1e6 cycles at 1 GHz = 1 ms.
    double expect = e.total_nj() * 1e-9 / 1e-3;
    EXPECT_NEAR(w, expect, 1e-12);
}

TEST(PowerTest, ZeroCyclesYieldsZeroPower)
{
    FrameStats s;
    EnergyBreakdown e = computeEnergy(s);
    EXPECT_DOUBLE_EQ(averagePowerW(e, s), 0.0);
}
