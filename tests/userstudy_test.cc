/**
 * @file
 * Unit tests for the simulated user-study model (Section VII-D).
 */

#include <gtest/gtest.h>

#include "replay/userstudy.hh"

using namespace pargpu;

namespace
{

ReplayCondition
cond(double mssim, double fps, int w = 1280, int h = 1024)
{
    ReplayCondition c;
    c.mssim = mssim;
    c.avg_fps = fps;
    c.width = w;
    c.height = h;
    return c;
}

} // namespace

TEST(UserStudyTest, ScoresWithinScale)
{
    for (double q : {0.5, 0.8, 0.93, 1.0}) {
        for (double f : {15.0, 30.0, 60.0}) {
            double s = satisfactionScore(cond(q, f));
            EXPECT_GE(s, 1.0);
            EXPECT_LE(s, 5.0);
        }
    }
}

TEST(UserStudyTest, Deterministic)
{
    double a = satisfactionScore(cond(0.9, 45.0));
    double b = satisfactionScore(cond(0.9, 45.0));
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(UserStudyTest, PerfectConditionScoresHigh)
{
    EXPECT_GT(satisfactionScore(cond(1.0, 60.0)), 4.3);
}

TEST(UserStudyTest, TerribleConditionScoresLow)
{
    EXPECT_LT(satisfactionScore(cond(0.5, 10.0)), 2.0);
}

TEST(UserStudyTest, QualityAboveSaturationIndistinguishable)
{
    // MSSIM at/above the saturation point is visually transparent:
    // scores equal at the same fps.
    UserStudyConfig cfg;
    double a = satisfactionScore(cond(cfg.mssim_saturation, 60.0), cfg);
    double b = satisfactionScore(cond(1.00, 60.0), cfg);
    EXPECT_NEAR(a, b, 1e-9);
}

TEST(UserStudyTest, PerceivedQualityMappingEndpoints)
{
    UserStudyConfig cfg;
    EXPECT_DOUBLE_EQ(perceivedQuality(cfg.mssim_floor, cfg), 0.0);
    EXPECT_DOUBLE_EQ(perceivedQuality(cfg.mssim_saturation, cfg), 1.0);
    EXPECT_DOUBLE_EQ(perceivedQuality(0.0, cfg), 0.0);
    EXPECT_DOUBLE_EQ(perceivedQuality(1.0, cfg), 1.0);
    double mid = 0.5 * (cfg.mssim_floor + cfg.mssim_saturation);
    EXPECT_NEAR(perceivedQuality(mid, cfg), 0.5, 1e-9);
}

TEST(UserStudyTest, HigherFpsPreferredAtSameQuality)
{
    EXPECT_GT(satisfactionScore(cond(0.95, 60.0)),
              satisfactionScore(cond(0.95, 30.0)));
}

TEST(UserStudyTest, HigherQualityPreferredAtSameFps)
{
    // Compare two conditions inside the discriminating band of the
    // content-calibrated quality mapping.
    UserStudyConfig cfg;
    double mid = 0.5 * (cfg.mssim_floor + cfg.mssim_saturation);
    EXPECT_GT(satisfactionScore(cond(cfg.mssim_saturation, 45.0), cfg),
              satisfactionScore(cond(mid, 45.0), cfg));
    EXPECT_GT(satisfactionScore(cond(mid, 45.0), cfg),
              satisfactionScore(cond(cfg.mssim_floor, 45.0), cfg));
}

TEST(UserStudyTest, LagPenalizedBeyondFps)
{
    ReplayCondition smooth = cond(0.95, 40.0);
    ReplayCondition stutter = cond(0.95, 40.0);
    stutter.lag_fraction = 0.8;
    EXPECT_GT(satisfactionScore(smooth), satisfactionScore(stutter));
}

TEST(PerformanceWeightTest, GrowsWithResolution)
{
    double low = performanceWeight(640, 480);
    double mid = performanceWeight(1280, 1024);
    double high = performanceWeight(1600, 1200);
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
}

TEST(PerformanceWeightTest, Bounded)
{
    EXPECT_GE(performanceWeight(160, 120), 0.25);
    EXPECT_LE(performanceWeight(7680, 4320), 0.75);
}

TEST(UserStudyTest, ResolutionShiftsTradeoffPreference)
{
    // The paper's Fig. 22 observation: at high resolution users prefer the
    // faster-but-slightly-degraded condition; at low resolution the
    // higher-quality one.
    ReplayCondition fast_lossy_hi = cond(0.90, 60.0, 1600, 1200);
    ReplayCondition slow_clean_hi = cond(1.00, 30.0, 1600, 1200);
    EXPECT_GT(satisfactionScore(fast_lossy_hi),
              satisfactionScore(slow_clean_hi));

    ReplayCondition fast_lossy_lo = cond(0.75, 60.0, 640, 480);
    ReplayCondition slow_clean_lo = cond(1.00, 40.0, 640, 480);
    EXPECT_LT(satisfactionScore(fast_lossy_lo),
              satisfactionScore(slow_clean_lo));
}
