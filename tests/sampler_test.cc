/**
 * @file
 * Unit tests for the hardware-style texture sampler: anisotropy math,
 * bilinear/trilinear footprints, and anisotropic sample placement
 * (Section IV-A of the paper).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "texture/procedural.hh"
#include "texture/sampler.hh"

using namespace pargpu;

namespace
{

TextureMap
makeTex(int size = 64, TextureKind kind = TextureKind::Noise)
{
    return TextureMap(size, size, generateTexture(kind, size, 7));
}

} // namespace

TEST(AnisotropyTest, IsotropicFootprintHasSampleSizeOne)
{
    TextureMap tex = makeTex();
    TextureSampler s(tex);
    // One texel per pixel in both axes.
    Vec2 d{1.0f / 64, 0.0f}, dy{0.0f, 1.0f / 64};
    AnisotropyInfo info = s.computeAnisotropy(d, dy);
    EXPECT_EQ(info.sampleSize, 1);
    EXPECT_NEAR(info.pMax, 1.0f, 1e-4f);
    EXPECT_NEAR(info.pMin, 1.0f, 1e-4f);
    EXPECT_NEAR(info.lodTF, 0.0f, 1e-4f);
    EXPECT_NEAR(info.lodAF, 0.0f, 1e-4f);
}

TEST(AnisotropyTest, SampleSizeEqualsAxisRatio)
{
    TextureMap tex = makeTex();
    TextureSampler s(tex);
    // 4 texels along x, 1 along y: N = 4.
    AnisotropyInfo info = s.computeAnisotropy({4.0f / 64, 0.0f},
                                              {0.0f, 1.0f / 64});
    EXPECT_EQ(info.sampleSize, 4);
    EXPECT_NEAR(info.pMax, 4.0f, 1e-3f);
    EXPECT_NEAR(info.pMin, 1.0f, 1e-3f);
}

TEST(AnisotropyTest, SampleSizeClampsAtMaxAniso)
{
    TextureMap tex = makeTex();
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({64.0f / 64, 0.0f},
                                              {0.0f, 1.0f / 64}, 16);
    EXPECT_EQ(info.sampleSize, 16);
}

TEST(AnisotropyTest, MaxAnisoParameterRespected)
{
    TextureMap tex = makeTex();
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({32.0f / 64, 0.0f},
                                              {0.0f, 1.0f / 64}, 8);
    EXPECT_EQ(info.sampleSize, 8);
}

TEST(AnisotropyTest, MajorAxisFollowsLargerDerivative)
{
    TextureMap tex = makeTex();
    TextureSampler s(tex);
    AnisotropyInfo ix = s.computeAnisotropy({8.0f / 64, 0.0f},
                                            {0.0f, 2.0f / 64});
    EXPECT_GT(std::fabs(ix.majorUv.x), std::fabs(ix.majorUv.y));
    AnisotropyInfo iy = s.computeAnisotropy({2.0f / 64, 0.0f},
                                            {0.0f, 8.0f / 64});
    EXPECT_GT(std::fabs(iy.majorUv.y), std::fabs(iy.majorUv.x));
}

TEST(AnisotropyTest, LodRelationTFvsAF)
{
    // The paper's Section V-C(2): TF's LOD follows the major axis, AF's
    // the minor axis, so lodAF <= lodTF with the gap = log2(N).
    TextureMap tex = makeTex();
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({8.0f / 64, 0.0f},
                                              {0.0f, 2.0f / 64});
    EXPECT_EQ(info.sampleSize, 4);
    EXPECT_NEAR(info.lodTF, 3.0f, 1e-3f);       // log2(8)
    EXPECT_NEAR(info.lodAF, 1.0f, 1e-3f);       // log2(8/4)
    EXPECT_LE(info.lodAF, info.lodTF);
}

TEST(BilinearTest, TexelCenterReturnsExactTexel)
{
    TextureMap tex = makeTex(8);
    TextureSampler s(tex);
    // Texel (3, 5) center is at uv = ((3+0.5)/8, (5+0.5)/8).
    Color4f c = s.bilinear({3.5f / 8, 5.5f / 8}, 0);
    Color4f t = tex.fetchTexel(0, 3, 5);
    EXPECT_NEAR(c.r, t.r, 1e-6f);
    EXPECT_NEAR(c.g, t.g, 1e-6f);
    EXPECT_NEAR(c.b, t.b, 1e-6f);
}

TEST(BilinearTest, MidpointAveragesNeighbors)
{
    TextureMap tex = makeTex(8);
    TextureSampler s(tex);
    // Halfway between texels (2,2) and (3,2).
    Color4f c = s.bilinear({4.0f / 8, 2.5f / 8}, 0);
    Color4f expect = (tex.fetchTexel(0, 3, 2) + tex.fetchTexel(0, 4, 2))
        * 0.5f;
    EXPECT_NEAR(c.r, expect.r, 1e-5f);
}

TEST(TrilinearTest, FootprintHasEightTexelsAcrossTwoLevels)
{
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    TrilinearSample t = s.trilinear({0.4f, 0.6f}, 1.5f);
    EXPECT_EQ(t.level0, 1);
    EXPECT_EQ(t.level1, 2);
    EXPECT_NEAR(t.frac, 0.5f, 1e-6f);
    int lvl0 = 0, lvl1 = 0;
    for (const TexelRef &ref : t.texels) {
        lvl0 += ref.level == 1;
        lvl1 += ref.level == 2;
    }
    EXPECT_EQ(lvl0, 4);
    EXPECT_EQ(lvl1, 4);
}

TEST(TrilinearTest, WeightsSumToOne)
{
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    for (float lod : {0.0f, 0.25f, 1.0f, 2.7f, 5.9f}) {
        TrilinearSample t = s.trilinear({0.13f, 0.77f}, lod);
        float sum = 0.0f;
        for (const TexelRef &ref : t.texels)
            sum += ref.weight;
        EXPECT_NEAR(sum, 1.0f, 1e-5f) << "lod=" << lod;
    }
}

TEST(TrilinearTest, LodClampedAtPyramidEnds)
{
    TextureMap tex = makeTex(16); // levels 0..4
    TextureSampler s(tex);
    TrilinearSample lo = s.trilinear({0.5f, 0.5f}, -2.0f);
    EXPECT_EQ(lo.level0, 0);
    EXPECT_EQ(lo.level1, 0);
    TrilinearSample hi = s.trilinear({0.5f, 0.5f}, 99.0f);
    EXPECT_EQ(hi.level0, 4);
    EXPECT_EQ(hi.level1, 4);
}

TEST(TrilinearTest, IntegerLodBlendsFromSingleLevel)
{
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    TrilinearSample t = s.trilinear({0.3f, 0.3f}, 2.0f);
    EXPECT_EQ(t.level0, 2);
    EXPECT_NEAR(t.frac, 0.0f, 1e-6f);
    // Level-1 texels carry zero weight.
    for (int i = 4; i < 8; ++i)
        EXPECT_NEAR(t.texels[i].weight, 0.0f, 1e-6f);
}

TEST(TrilinearTest, ColorMatchesManualWeightedSum)
{
    TextureMap tex = makeTex(32);
    TextureSampler s(tex);
    TrilinearSample t = s.trilinear({0.21f, 0.83f}, 1.3f);
    Color4f acc{0, 0, 0, 0};
    for (const TexelRef &ref : t.texels)
        acc += tex.fetchTexel(ref.level, ref.x, ref.y) * ref.weight;
    EXPECT_NEAR(acc.r, t.color.r, 1e-5f);
    EXPECT_NEAR(acc.g, t.color.g, 1e-5f);
    EXPECT_NEAR(acc.b, t.color.b, 1e-5f);
}

TEST(AnisotropicTest, ProducesNSamples)
{
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({6.0f / 64, 0.0f},
                                              {0.0f, 1.0f / 64});
    FilterResult r = s.filterAnisotropic({0.5f, 0.5f}, info);
    EXPECT_EQ(r.samples.size(), static_cast<std::size_t>(info.sampleSize));
}

TEST(AnisotropicTest, EqualsTrilinearWhenNIsOne)
{
    // Eq. 3 degenerates to one TF sample at N == 1: the center sample is
    // the pixel center, so AF == TF.
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({1.0f / 64, 0.0f},
                                              {0.0f, 1.0f / 64});
    ASSERT_EQ(info.sampleSize, 1);
    FilterResult af = s.filterAnisotropic({0.37f, 0.58f}, info);
    FilterResult tf = s.filterTrilinear({0.37f, 0.58f}, info.lodAF);
    EXPECT_NEAR(af.color.r, tf.color.r, 1e-6f);
    EXPECT_NEAR(af.color.g, tf.color.g, 1e-6f);
}

TEST(AnisotropicTest, SamplesCenteredOnPixel)
{
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({8.0f / 64, 0.0f},
                                              {0.0f, 1.0f / 64});
    FilterResult r = s.filterAnisotropic({0.5f, 0.5f}, info);
    // Mean of sample centers equals the pixel center.
    float mu = 0.0f, mv = 0.0f;
    for (const TrilinearSample &ts : r.samples) {
        mu += ts.uv.x;
        mv += ts.uv.y;
    }
    mu /= r.samples.size();
    mv /= r.samples.size();
    EXPECT_NEAR(mu, 0.5f, 1e-5f);
    EXPECT_NEAR(mv, 0.5f, 1e-5f);
}

TEST(AnisotropicTest, SamplesSpreadAlongMajorAxisOnly)
{
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({8.0f / 64, 0.0f},
                                              {0.0f, 1.0f / 64});
    FilterResult r = s.filterAnisotropic({0.5f, 0.5f}, info);
    for (const TrilinearSample &ts : r.samples)
        EXPECT_NEAR(ts.uv.y, 0.5f, 1e-5f);
    EXPECT_LT(r.samples.front().uv.x, r.samples.back().uv.x);
}

TEST(AnisotropicTest, ColorIsMeanOfSampleColors)
{
    TextureMap tex = makeTex(64);
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({5.0f / 64, 1.0f / 64},
                                              {0.0f, 1.5f / 64});
    FilterResult r = s.filterAnisotropic({0.31f, 0.62f}, info);
    Color4f acc{0, 0, 0, 0};
    for (const TrilinearSample &ts : r.samples)
        acc += ts.color * (1.0f / r.samples.size());
    EXPECT_NEAR(acc.r, r.color.r, 1e-5f);
    EXPECT_NEAR(acc.b, r.color.b, 1e-5f);
}

TEST(AnisotropicTest, MaxFootprintIs128Texels)
{
    // Section II-B: the max AF level permits 128 texels per pixel, 16x the
    // 8 texels of trilinear.
    TextureMap tex = makeTex(256);
    TextureSampler s(tex);
    AnisotropyInfo info = s.computeAnisotropy({64.0f / 256, 0.0f},
                                              {0.0f, 1.0f / 256}, 16);
    ASSERT_EQ(info.sampleSize, 16);
    FilterResult r = s.filterAnisotropic({0.5f, 0.5f}, info);
    std::size_t texels = 0;
    for (const TrilinearSample &ts : r.samples)
        texels += ts.texels.size();
    EXPECT_EQ(texels, 128u);
}
