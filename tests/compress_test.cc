/**
 * @file
 * Unit tests for BC1-style block texture compression.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "texture/compress.hh"
#include "texture/procedural.hh"
#include "texture/texture.hh"

using namespace pargpu;

TEST(Rgb565Test, RoundTripAtRepresentableValues)
{
    // Pure white/black are exactly representable.
    Color4f white = unpackRGB565(packRGB565({1, 1, 1}));
    EXPECT_FLOAT_EQ(white.r, 1.0f);
    EXPECT_FLOAT_EQ(white.g, 1.0f);
    EXPECT_FLOAT_EQ(white.b, 1.0f);
    Color4f black = unpackRGB565(packRGB565({0, 0, 0}));
    EXPECT_FLOAT_EQ(black.r, 0.0f);
}

TEST(Rgb565Test, QuantizationErrorBounded)
{
    SplitMix64 rng(3);
    for (int i = 0; i < 500; ++i) {
        Color4f c{rng.nextFloat(), rng.nextFloat(), rng.nextFloat()};
        Color4f back = unpackRGB565(packRGB565(c));
        EXPECT_NEAR(back.r, c.r, 0.5f / 31.0f + 1e-5f);
        EXPECT_NEAR(back.g, c.g, 0.5f / 63.0f + 1e-5f);
        EXPECT_NEAR(back.b, c.b, 0.5f / 31.0f + 1e-5f);
    }
}

TEST(Bc1BlockTest, SolidBlockDecodesExactlyToEndpointQuantization)
{
    RGBA8 texels[16];
    for (RGBA8 &t : texels)
        t = packRGBA8({0.5f, 0.25f, 0.75f});
    Bc1Block block = encodeBc1Block(texels);
    Color4f ref = unpackRGB565(packRGB565(unpackRGBA8(texels[0])));
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            Color4f d = decodeBc1Texel(block, x, y);
            EXPECT_NEAR(d.r, ref.r, 1e-6f);
            EXPECT_NEAR(d.g, ref.g, 1e-6f);
        }
    }
}

TEST(Bc1BlockTest, TwoToneBlockPreservesBothTones)
{
    RGBA8 texels[16];
    for (int i = 0; i < 16; ++i)
        texels[i] = (i % 2) ? packRGBA8({0.9f, 0.9f, 0.9f})
                            : packRGBA8({0.1f, 0.1f, 0.1f});
    Bc1Block block = encodeBc1Block(texels);
    for (int i = 0; i < 16; ++i) {
        Color4f d = decodeBc1Texel(block, i % 4, i / 4);
        float expect = (i % 2) ? 0.9f : 0.1f;
        EXPECT_NEAR(d.luma(), expect, 0.05f);
    }
}

TEST(Bc1BlockTest, GradientErrorBounded)
{
    RGBA8 texels[16];
    for (int i = 0; i < 16; ++i) {
        float v = i / 15.0f;
        texels[i] = packRGBA8({v, v, v});
    }
    Bc1Block block = encodeBc1Block(texels);
    double err = 0.0;
    for (int i = 0; i < 16; ++i) {
        Color4f d = decodeBc1Texel(block, i % 4, i / 4);
        err += std::abs(d.luma() - i / 15.0f);
    }
    // 4 palette levels over a [0,1] ramp: average error bounded by ~1/6.
    EXPECT_LT(err / 16.0, 0.17);
}

TEST(CompressLevelTest, BlockCountCoversLevel)
{
    std::vector<RGBA8> texels(64 * 32, packRGBA8({0.3f, 0.3f, 0.3f}));
    auto blocks = compressLevel(64, 32, texels);
    EXPECT_EQ(blocks.size(), 16u * 8u);
    // Non-multiple-of-4 level pads by clamping.
    std::vector<RGBA8> small(2 * 2, packRGBA8({0.6f, 0.2f, 0.1f}));
    auto tiny = compressLevel(2, 2, small);
    EXPECT_EQ(tiny.size(), 1u);
}

TEST(Bc1TextureTest, RoughlyEightToOneFootprint)
{
    auto texels = generateTexture(TextureKind::Noise, 64, 5);
    TextureMap raw(64, 64, texels, WrapMode::Repeat,
                   TexelLayout::Tiled4x4, StorageFormat::RGBA8);
    TextureMap bc1(64, 64, texels, WrapMode::Repeat,
                   TexelLayout::Tiled4x4, StorageFormat::BC1);
    // Exactly 8:1 per level of 4x4 blocks; the sub-4x4 pyramid tail pads
    // to whole blocks, so the aggregate is slightly below 8:1.
    double ratio = static_cast<double>(raw.sizeBytes()) /
        static_cast<double>(bc1.sizeBytes());
    EXPECT_GT(ratio, 7.5);
    EXPECT_LE(ratio, 8.0);
    // Level 0 alone is exact.
    EXPECT_EQ(bc1.texelAddr(0, 0, 0), bc1.baseAddr());
}

TEST(Bc1TextureTest, BlockTexelsShareOneAddress)
{
    auto texels = generateTexture(TextureKind::Noise, 64, 5);
    TextureMap bc1(64, 64, texels, WrapMode::Repeat,
                   TexelLayout::Tiled4x4, StorageFormat::BC1);
    Addr a = bc1.texelAddr(0, 0, 0);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            EXPECT_EQ(bc1.texelAddr(0, x, y), a);
    EXPECT_NE(bc1.texelAddr(0, 4, 0), a);
    EXPECT_EQ(bc1.texelAddr(0, 4, 0) - a, Bc1Block::kBytes);
}

TEST(Bc1TextureTest, DecodedContentCloseToOriginal)
{
    auto texels = generateTexture(TextureKind::Marble, 64, 5);
    TextureMap raw(64, 64, texels);
    TextureMap bc1(64, 64, texels, WrapMode::Repeat,
                   TexelLayout::Tiled4x4, StorageFormat::BC1);
    double err = 0.0;
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            err += std::abs(raw.fetchTexel(0, x, y).luma() -
                            bc1.fetchTexel(0, x, y).luma());
    err /= 64.0 * 64.0;
    EXPECT_GT(err, 0.0);   // Lossy...
    EXPECT_LT(err, 0.065); // ... but close.
}

TEST(Bc1TextureTest, WrapModesStillApply)
{
    auto texels = generateTexture(TextureKind::Bricks, 32, 9);
    TextureMap bc1(32, 32, texels, WrapMode::Repeat,
                   TexelLayout::Tiled4x4, StorageFormat::BC1);
    EXPECT_EQ(bc1.texelAddr(0, -1, 0), bc1.texelAddr(0, 31, 0));
    Color4f a = bc1.fetchTexel(0, 33, 2);
    Color4f b = bc1.fetchTexel(0, 1, 2);
    EXPECT_FLOAT_EQ(a.r, b.r);
}
