/**
 * @file
 * Unit tests for the Session facade (src/harness/session.hh): typed
 * Status reporting, immutable shared assets, concurrent jobs
 * bit-identical to the legacy sweep path, snapshot streaming, and job
 * handles surviving Session teardown.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "harness/metrics.hh"
#include "harness/session.hh"

using namespace pargpu;

namespace
{

const GameTrace &
tinyTrace()
{
    static GameTrace t = buildGameTrace(GameId::Wolf, 96, 72, 3);
    return t;
}

/**
 * A fresh trace identical to tinyTrace(), movable into Session::load()
 * (GameTrace is move-only). Workload construction is deterministic, so
 * runs on the two instances are bit-identical.
 */
GameTrace
makeTiny()
{
    return buildGameTrace(GameId::Wolf, 96, 72, 3);
}

/** The sweep conditions the concurrency tests compare across paths. */
std::vector<RunConfig>
sweepConfigs()
{
    std::vector<RunConfig> configs;
    for (DesignScenario s :
         {DesignScenario::Baseline, DesignScenario::Patu,
          DesignScenario::AfSsimNTxds}) {
        RunConfig c;
        c.scenario = s;
        configs.push_back(c);
    }
    RunConfig tweaked;
    tweaked.scenario = DesignScenario::Patu;
    tweaked.threshold = 0.8f;
    tweaked.tc_scale = 2;
    configs.push_back(tweaked);
    return configs;
}

/** The full metrics document (registry included) for one run. */
std::string
metricsDump(const RunConfig &config, const RunResult &run)
{
    RunMetadata meta;
    meta.tool = "session_test";
    meta.workload = tinyTrace().name;
    meta.width = tinyTrace().width;
    meta.height = tinyTrace().height;
    meta.frames = static_cast<int>(tinyTrace().cameras.size());
    return metricsJson(meta, config, run).dump();
}

/**
 * Byte-level equality of two runs under @p config: every per-frame
 * counter, the aggregates and the full stat registry (compared through
 * the exporter, the document a server ships), plus raw image bytes.
 */
void
expectRunsIdentical(const RunConfig &config, const RunResult &a,
                    const RunResult &b)
{
    ASSERT_EQ(a.frames.size(), b.frames.size());
    EXPECT_EQ(a.avg_cycles, b.avg_cycles);
    EXPECT_EQ(a.total_energy_nj, b.total_energy_nj);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
    EXPECT_EQ(metricsDump(config, a), metricsDump(config, b));
    ASSERT_EQ(a.images.size(), b.images.size());
    for (std::size_t i = 0; i < a.images.size(); ++i) {
        ASSERT_EQ(a.images[i].pixels().size(), b.images[i].pixels().size());
        EXPECT_EQ(std::memcmp(a.images[i].pixels().data(),
                              b.images[i].pixels().data(),
                              a.images[i].pixels().size() *
                                  sizeof(Color4f)),
                  0)
            << "image " << i;
    }
}

} // namespace

TEST(StatusTest, CodesHaveStableWireNames)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "ok");
    EXPECT_STREQ(statusCodeName(StatusCode::InvalidConfig),
                 "invalid_config");
    EXPECT_STREQ(statusCodeName(StatusCode::UnknownTrace),
                 "unknown_trace");
    EXPECT_STREQ(statusCodeName(StatusCode::DuplicateKey),
                 "duplicate_key");
    EXPECT_STREQ(statusCodeName(StatusCode::InvalidRequest),
                 "invalid_request");
    EXPECT_STREQ(statusCodeName(StatusCode::ShuttingDown),
                 "shutting_down");
    EXPECT_STREQ(statusCodeName(StatusCode::IoError), "io_error");
}

TEST(StatusTest, ValidateRunConfigJoinsEveryViolation)
{
    EXPECT_TRUE(validateRunConfig(RunConfig{}).ok());

    RunConfig bad;
    bad.threshold = 1.5f;
    bad.tc_scale = 3;
    Status st = validateRunConfig(bad);
    EXPECT_EQ(st.code, StatusCode::InvalidConfig);
    // Both violations appear, joined, with the configErrorMessage() text.
    EXPECT_NE(st.message.find(configErrorMessage(ConfigError::BadThreshold)),
              std::string::npos);
    EXPECT_NE(st.message.find(configErrorMessage(ConfigError::BadTcScale)),
              std::string::npos);
    EXPECT_NE(st.message.find("; "), std::string::npos);
}

TEST(SessionTest, EnvSnapshotIsProcessWideAndConsistent)
{
    Session session;
    const EnvOverrides &env = session.env();
    EXPECT_EQ(&env, &envOverrides());
    EXPECT_GE(env.default_threads, 1u);
    EXPECT_TRUE(isKnownFilterPolicy(env.filter_policy));
}

TEST(SessionTest, LoadRejectsBadAndDuplicateKeys)
{
    Session session;
    EXPECT_EQ(session.load("", GameTrace{}).code,
              StatusCode::InvalidRequest);
    EXPECT_EQ(session.load("w", GameId::Wolf, 0, 48, 1).code,
              StatusCode::InvalidRequest);

    ASSERT_TRUE(session.load("w", makeTiny()).ok());
    Status dup = session.load("w", makeTiny());
    EXPECT_EQ(dup.code, StatusCode::DuplicateKey);
    EXPECT_NE(dup.message.find("'w'"), std::string::npos);
    EXPECT_EQ(session.traceKeys(), std::vector<std::string>{"w"});
}

TEST(SessionTest, AssetsAreSharedReadOnlyAcrossJobs)
{
    Session session;
    ASSERT_TRUE(session.load("w", makeTiny()).ok());
    std::shared_ptr<const GameTrace> asset = session.trace("w");
    ASSERT_NE(asset, nullptr);
    // Every lookup and every job references the same immutable object —
    // no copies, no reloads.
    EXPECT_EQ(session.trace("w").get(), asset.get());
    RunConfig cfg;
    cfg.keep_images = false;
    JobHandle a = session.submit("w", cfg);
    JobHandle b = session.submit("w", cfg);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    a->wait();
    b->wait();
    EXPECT_EQ(session.trace("w").get(), asset.get());
    expectRunsIdentical(cfg, a->result(), b->result());
}

TEST(SessionTest, SubmitReportsTypedFailures)
{
    Session session;
    Status st;
    EXPECT_EQ(session.submit("missing", RunConfig{}, &st), nullptr);
    EXPECT_EQ(st.code, StatusCode::UnknownTrace);

    ASSERT_TRUE(session.load("w", makeTiny()).ok());
    RunConfig bad;
    bad.threshold = 2.0f;
    EXPECT_EQ(session.submit("w", bad, &st), nullptr);
    EXPECT_EQ(st.code, StatusCode::InvalidConfig);

    // submitSweep is all-or-nothing and labels the offending index.
    std::vector<RunConfig> configs(3);
    configs[2].tc_scale = 5;
    EXPECT_TRUE(session.submitSweep("w", configs, &st).empty());
    EXPECT_EQ(st.code, StatusCode::InvalidConfig);
    EXPECT_NE(st.message.find("configs[2]"), std::string::npos);
    EXPECT_EQ(session.jobsSubmitted(), 0u);
}

TEST(SessionTest, KeyedSweepMatchesLegacyRunSweepExactly)
{
    const std::vector<RunConfig> configs = sweepConfigs();
    // The legacy path, forced serial: the reference ordering.
    std::vector<RunResult> legacy = runSweep(tinyTrace(), configs, 1);

    Session session;
    ASSERT_TRUE(session.load("w", makeTiny()).ok());
    std::vector<RunResult> keyed;
    Status st = session.sweep("w", configs, &keyed);
    ASSERT_TRUE(st.ok()) << st.message;
    ASSERT_EQ(keyed.size(), legacy.size());
    // Byte-identical through the exporter: metrics JSON, counters and
    // aggregates, plus raw images (the acceptance criterion).
    for (std::size_t i = 0; i < keyed.size(); ++i)
        expectRunsIdentical(configs[i], keyed[i], legacy[i]);

    Status missing = session.sweep("missing", configs, nullptr);
    EXPECT_EQ(missing.code, StatusCode::UnknownTrace);
}

TEST(SessionTest, ConcurrentSubmitBitIdenticalToSerialSweep)
{
    const std::vector<RunConfig> configs = sweepConfigs();
    std::vector<RunResult> legacy = runSweep(tinyTrace(), configs, 1);

    // Four dispatchers so jobs genuinely overlap (each additionally
    // fans frames onto the shared pool).
    Session session(SessionOptions{4});
    ASSERT_TRUE(session.load("w", makeTiny()).ok());
    Status st;
    std::vector<JobHandle> jobs = session.submitSweep("w", configs, &st);
    ASSERT_TRUE(st.ok()) << st.message;
    ASSERT_EQ(jobs.size(), configs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i]->wait();
        EXPECT_EQ(jobs[i]->state(), Job::State::Done);
        EXPECT_EQ(jobs[i]->framesCompleted(), jobs[i]->framesTotal());
        expectRunsIdentical(configs[i], jobs[i]->result(), legacy[i]);
    }
    EXPECT_EQ(session.jobsSubmitted(), configs.size());
    EXPECT_EQ(session.jobsCompleted(), configs.size());
}

TEST(SessionTest, SnapshotAfterDoneMatchesFinalRegistry)
{
    Session session;
    ASSERT_TRUE(session.load("w", makeTiny()).ok());
    RunConfig cfg;
    cfg.keep_images = false;
    JobHandle job = session.submit("w", cfg);
    ASSERT_NE(job, nullptr);
    job->wait();

    Json snap = job->snapshot();
    EXPECT_EQ(snap["state"].str(), "done");
    EXPECT_EQ(snap["trace"].str(), "w");
    EXPECT_EQ(static_cast<std::size_t>(snap["frames_total"].number()),
              job->framesTotal());
    EXPECT_EQ(snap["frames_completed"].number(),
              snap["frames_total"].number());
    EXPECT_EQ(snap["aggregate"]["avg_cycles"].number(),
              job->result().avg_cycles);

    // The snapshot registry is the same document metricsJson() derives
    // from the final result.
    StatRegistry reg;
    buildRunRegistry(job->result(), reg);
    EXPECT_EQ(snap["registry"].dump(), reg.snapshot().toJson().dump());
}

TEST(SessionTest, JobHandlesSurviveSessionTeardown)
{
    std::vector<JobHandle> jobs;
    {
        Session session(SessionOptions{2});
        ASSERT_TRUE(session.load("w", makeTiny()).ok());
        RunConfig cfg;
        cfg.keep_images = false;
        for (int i = 0; i < 4; ++i) {
            JobHandle j = session.submit("w", cfg);
            ASSERT_NE(j, nullptr);
            jobs.push_back(j);
        }
        // Session destroyed here with jobs possibly still queued:
        // teardown drains the queue, so every accepted job completes.
    }
    for (const JobHandle &job : jobs) {
        EXPECT_EQ(job->state(), Job::State::Done);
        // The handle keeps the shared asset alive past the Session.
        EXPECT_EQ(job->framesCompleted(), job->framesTotal());
        EXPECT_FALSE(job->result().frames.empty());
    }
    RunConfig cfg;
    cfg.keep_images = false;
    expectRunsIdentical(cfg, jobs.front()->result(),
                        jobs.back()->result());
}

TEST(SessionTest, LegacyWrappersForwardToGlobalSession)
{
    RunConfig cfg;
    cfg.keep_images = false;
    RunResult via_legacy = runTrace(tinyTrace(), cfg);
    RunResult via_session = Session::global().run(tinyTrace(), cfg);
    expectRunsIdentical(cfg, via_legacy, via_session);
}
