/**
 * @file
 * Tests pinning the baseline configuration to the paper's Table I; if a
 * default drifts, the reproduction's premise changes and these fail.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace pargpu;

TEST(TableOneTest, CoreOrganization)
{
    GpuConfig c;
    EXPECT_DOUBLE_EQ(c.frequency_ghz, 1.0);
    EXPECT_EQ(c.clusters, 4u);
    EXPECT_EQ(c.shaders_per_cluster, 16u);
    EXPECT_EQ(c.simd_width, 4u);
    EXPECT_EQ(c.tile_size, 16u);
}

TEST(TableOneTest, TextureUnitConfiguration)
{
    GpuConfig c;
    EXPECT_EQ(c.texture_units, 1u);
    EXPECT_EQ(c.addr_alus, 4u);
    EXPECT_EQ(c.filter_alus, 8u);
    EXPECT_EQ(c.cycles_per_trilinear, 2u);
    EXPECT_EQ(c.max_aniso, 16);
}

TEST(TableOneTest, CacheHierarchy)
{
    GpuConfig c;
    EXPECT_EQ(c.mem.tc_size, 16u * 1024);
    EXPECT_EQ(c.mem.tc_assoc, 4u);
    EXPECT_EQ(c.mem.llc_size, 128u * 1024);
    EXPECT_EQ(c.mem.llc_assoc, 8u);
    EXPECT_EQ(c.mem.tc_scale, 1u);
    EXPECT_EQ(c.mem.llc_scale, 1u);
}

TEST(TableOneTest, MemoryConfiguration)
{
    GpuConfig c;
    EXPECT_EQ(c.mem.dram.channels, 8u);
    EXPECT_EQ(c.mem.dram.banks, 8u);
    EXPECT_EQ(c.mem.dram.bytes_per_cycle, 16u);
}

TEST(TableOneTest, PatuDefaults)
{
    GpuConfig c;
    EXPECT_EQ(c.patu.scenario, DesignScenario::Patu);
    EXPECT_FLOAT_EQ(c.patu.threshold, 0.4f); // The paper's average BP.
    EXPECT_EQ(c.patu.max_aniso, 16);
    EXPECT_EQ(c.patu.table_entries, 16);
}

TEST(AddressMapTest, RegionsAreDisjoint)
{
    EXPECT_LT(AddressMap::kVertexBase, AddressMap::kTextureBase);
    EXPECT_LT(AddressMap::kTextureBase, AddressMap::kFramebufferBase);
}
