/**
 * @file
 * Bit-identity tests for the SoA kernel layer (src/simd/): every
 * runnable dispatch tier must produce exactly the scalar reference
 * results — same color bits, same texel streams, same memo counter
 * sequence — on the edge cases most likely to diverge: integer-boundary
 * LODs, UV wrap/clamp at texture edges, and max-anisotropy clamping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "simd/batch.hh"
#include "simd/dispatch.hh"
#include "simd/filter.hh"
#include "simd/kernels.hh"
#include "texture/procedural.hh"
#include "texture/sampler.hh"

using namespace pargpu;

namespace
{

/** Every tier this build and CPU can run (scalar always included). */
std::vector<simd::SimdTier>
runnableTiers()
{
    std::vector<simd::SimdTier> tiers{simd::SimdTier::Scalar};
    const auto top = static_cast<int>(simd::detectTier());
    if (top >= static_cast<int>(simd::SimdTier::Sse))
        tiers.push_back(simd::SimdTier::Sse);
    if (top >= static_cast<int>(simd::SimdTier::Avx2))
        tiers.push_back(simd::SimdTier::Avx2);
    return tiers;
}

/** Save/restore the process-wide active tier around a test body. */
class TierGuard
{
  public:
    TierGuard() : saved_(simd::activeTier()) {}
    ~TierGuard() { simd::setActiveTier(saved_); }

  private:
    simd::SimdTier saved_;
};

TextureMap
makeTex(WrapMode wrap = WrapMode::Repeat, int size = 64)
{
    return TextureMap(size, size, generateTexture(TextureKind::Noise,
                                                  size, 7),
                      wrap);
}

/** Exact bit equality for floats (0.0f == -0.0f would hide a diff). */
void
expectBitEqual(float a, float b, const char *what)
{
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a, sizeof ba);
    std::memcpy(&bb, &b, sizeof bb);
    EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

void
expectColorEqual(const Color4f &a, const Color4f &b, const char *what)
{
    expectBitEqual(a.r, b.r, what);
    expectBitEqual(a.g, b.g, what);
    expectBitEqual(a.b, b.b, what);
    expectBitEqual(a.a, b.a, what);
}

void
expectSampleEqual(const TrilinearSample &a, const TrilinearSample &b)
{
    expectBitEqual(a.uv.x, b.uv.x, "uv.x");
    expectBitEqual(a.uv.y, b.uv.y, "uv.y");
    EXPECT_EQ(a.level0, b.level0);
    EXPECT_EQ(a.level1, b.level1);
    expectBitEqual(a.frac, b.frac, "frac");
    expectColorEqual(a.color, b.color, "sample color");
    for (int k = 0; k < 8; ++k) {
        const TexelRef &ta = a.texels[k];
        const TexelRef &tb = b.texels[k];
        EXPECT_EQ(ta.level, tb.level) << "texel " << k;
        EXPECT_EQ(ta.x, tb.x) << "texel " << k;
        EXPECT_EQ(ta.y, tb.y) << "texel " << k;
        expectBitEqual(ta.weight, tb.weight, "texel weight");
        EXPECT_EQ(ta.addr, tb.addr) << "texel " << k;
    }
}

} // namespace

// Every tier's accumulate() must match the scalar kernel bit-for-bit,
// including lane counts that are not a multiple of the vector width
// (pad lanes carry zero weights, per the kernel contract).
TEST(SimdKernelTest, AccumulateMatchesScalarAllTiersAllShapes)
{
    static simd::TexelBatch tex;
    static simd::WeightBatch wgt;
    SplitMix64 rng(11);
    for (int s = 0; s < simd::kMaxSlots; ++s) {
        for (int j = 0; j < simd::kMaxLanes; ++j) {
            tex.r[s][j] = rng.nextFloat();
            tex.g[s][j] = rng.nextFloat();
            tex.b[s][j] = rng.nextFloat();
            tex.a[s][j] = rng.nextFloat();
            wgt.w[s][j] = rng.nextFloat() * 0.25f;
        }
    }

    const int lane_counts[] = {1, 3, 4, 5, 7, 8, 9, 16, 33, 64};
    const int slot_counts[] = {1, 4, 5, 8};
    const simd::KernelOps &ref = simd::scalarKernels();

    TierGuard guard;
    for (simd::SimdTier tier : runnableTiers()) {
        // Route through the dispatcher rather than naming sseKernels()/
        // avx2Kernels() directly: those are only defined in
        // -DPARGPU_SIMD=ON builds and this test must link in both.
        simd::setActiveTier(tier);
        const simd::KernelOps &ops = simd::activeKernels();
        for (int slots : slot_counts) {
            for (int lanes : lane_counts) {
                // Zero the pad weights up to the next vector-width
                // multiple, as the gather loop does.
                const int width = ops.lanes;
                const int padded =
                    (lanes + width - 1) / width * width;
                for (int s = 0; s < slots; ++s)
                    for (int j = lanes; j < padded; ++j)
                        wgt.w[s][j] = 0.0f;

                alignas(32) float want_r[simd::kMaxLanes];
                alignas(32) float want_g[simd::kMaxLanes];
                alignas(32) float want_b[simd::kMaxLanes];
                alignas(32) float want_a[simd::kMaxLanes];
                alignas(32) float got_r[simd::kMaxLanes];
                alignas(32) float got_g[simd::kMaxLanes];
                alignas(32) float got_b[simd::kMaxLanes];
                alignas(32) float got_a[simd::kMaxLanes];
                ref.accumulate(tex, wgt, slots, lanes, want_r, want_g,
                               want_b, want_a);
                ops.accumulate(tex, wgt, slots, lanes, got_r, got_g,
                               got_b, got_a);
                for (int j = 0; j < lanes; ++j) {
                    SCOPED_TRACE(std::string(ops.name) + " slots=" +
                                 std::to_string(slots) + " lanes=" +
                                 std::to_string(lanes) + " lane " +
                                 std::to_string(j));
                    expectBitEqual(want_r[j], got_r[j], "r");
                    expectBitEqual(want_g[j], got_g[j], "g");
                    expectBitEqual(want_b[j], got_b[j], "b");
                    expectBitEqual(want_a[j], got_a[j], "a");
                }

                // Restore the weights the padding zeroed.
                SplitMix64 refill(11);
                for (int s = 0; s < simd::kMaxSlots; ++s) {
                    for (int j = 0; j < simd::kMaxLanes; ++j) {
                        refill.nextFloat();
                        refill.nextFloat();
                        refill.nextFloat();
                        refill.nextFloat();
                        wgt.w[s][j] = refill.nextFloat() * 0.25f;
                    }
                }
            }
        }
    }
}

// LODs exactly on integer boundaries select frac == 0 (and the clamped
// ends of the mip chain); the batched filter must reproduce the scalar
// sampler's choice bit-for-bit under every tier.
TEST(SimdKernelTest, IntegerBoundaryLodMatchesSampler)
{
    TierGuard guard;
    TextureMap tex = makeTex();
    TextureSampler s(tex);

    const float lods[] = {-1.0f, 0.0f, 1.0f, 2.0f, 5.0f, 6.0f, 9.0f};
    const Vec2 uvs[] = {{0.13f, 0.77f}, {0.5f, 0.5f}, {0.99f, 0.01f}};

    for (simd::SimdTier tier : runnableTiers()) {
        simd::setActiveTier(tier);
        simd::QuadFilter qf;
        for (float lod : lods) {
            for (const Vec2 &uv : uvs) {
                SCOPED_TRACE(std::string(simd::tierName(tier)) +
                             " lod=" + std::to_string(lod));
                TrilinearSample want = s.trilinear(uv, lod);
                TrilinearSample got;
                FootprintMemo memo;
                Color4f c = qf.filterTrilinear(s, uv, lod, memo, got);
                expectSampleEqual(want, got);
                expectColorEqual(want.color, c, "returned color");
            }
        }
    }
}

// Footprints straddling the texture border exercise the wrap/clamp
// address math; both wrap modes must match the scalar sampler and issue
// the identical memo probe sequence.
TEST(SimdKernelTest, WrapAndClampEdgesMatchSampler)
{
    TierGuard guard;
    const WrapMode modes[] = {WrapMode::Repeat, WrapMode::ClampToEdge};
    // Sample centers on and around the [0,1) seam, including coordinates
    // outside the unit square.
    const float coords[] = {-0.3f,    -0.01f, 0.0f,  0.004f, 0.5f,
                            0.996f, 0.999f, 1.0f, 1.25f};

    for (WrapMode mode : modes) {
        TextureMap tex = makeTex(mode);
        TextureSampler s(tex);
        std::vector<Vec2> uvs;
        for (float u : coords)
            for (float v : coords)
                uvs.push_back({u, v});

        const float lod = 1.3f;
        const LodSelect sel = s.selectLod(lod);

        // Scalar sampler reference, with its own memo so the probe
        // sequence is comparable.
        std::vector<TrilinearSample> want(uvs.size());
        FootprintMemo ref_memo;
        for (std::size_t i = 0; i < uvs.size(); ++i)
            s.trilinearInto(uvs[i], sel, want[i], &ref_memo);

        for (simd::SimdTier tier : runnableTiers()) {
            SCOPED_TRACE(std::string(simd::tierName(tier)) + " wrap=" +
                         (mode == WrapMode::Repeat ? "repeat" : "clamp"));
            simd::setActiveTier(tier);
            simd::QuadFilter qf;
            std::vector<TrilinearSample> got(uvs.size());
            FootprintMemo memo;
            // A batch holds at most kMaxLanes samples; feed the grid in
            // chunks like the texture unit does.
            for (std::size_t base = 0; base < uvs.size();
                 base += simd::kMaxLanes) {
                const int chunk = static_cast<int>(
                    std::min<std::size_t>(simd::kMaxLanes,
                                          uvs.size() - base));
                qf.filterSamples(s, uvs.data() + base, chunk, sel, memo,
                                 got.data() + base);
            }
            for (std::size_t i = 0; i < uvs.size(); ++i) {
                SCOPED_TRACE("sample " + std::to_string(i));
                expectSampleEqual(want[i], got[i]);
            }
            EXPECT_EQ(memo.lookups(), ref_memo.lookups());
            EXPECT_EQ(memo.hits(), ref_memo.hits());
        }
    }
}

// A pathologically elongated footprint clamps to kMaxAniso; the batched
// AF path must place, filter and average all 16 samples exactly as the
// scalar sampler does.
TEST(SimdKernelTest, MaxAnisoClampMatchesSampler)
{
    TierGuard guard;
    TextureMap tex = makeTex();
    TextureSampler s(tex);

    // 64 texels across x, 1 texel across y: anisotropy 64, clamped.
    AnisotropyInfo info =
        s.computeAnisotropy({1.0f, 0.0f}, {0.0f, 1.0f / 64});
    ASSERT_EQ(info.anisoDegree, TextureSampler::kMaxAniso);
    ASSERT_EQ(info.sampleSize, TextureSampler::kMaxAniso);

    const Vec2 uvs[] = {{0.42f, 0.63f}, {0.01f, 0.98f}};
    for (simd::SimdTier tier : runnableTiers()) {
        simd::setActiveTier(tier);
        simd::QuadFilter qf;
        for (const Vec2 &uv : uvs) {
            SCOPED_TRACE(simd::tierName(tier));
            std::vector<TrilinearSample> want(info.sampleSize);
            FootprintMemo ref_memo;
            Color4f want_c = s.filterAnisotropicInto(uv, info,
                                                     want.data(),
                                                     &ref_memo);
            std::vector<TrilinearSample> got(info.sampleSize);
            FootprintMemo memo;
            Color4f got_c = qf.filterAnisotropic(s, uv, info, memo,
                                                 got.data());
            expectColorEqual(want_c, got_c, "averaged color");
            for (int i = 0; i < info.sampleSize; ++i) {
                SCOPED_TRACE("sample " + std::to_string(i));
                expectSampleEqual(want[i], got[i]);
            }
            EXPECT_EQ(memo.lookups(), ref_memo.lookups());
            EXPECT_EQ(memo.hits(), ref_memo.hits());
        }
    }
}

// The compact (addresses + colors only) variants must emit exactly the
// addresses and colors of the full TrilinearSample path and issue the
// same memo probes.
TEST(SimdKernelTest, CompactPathMatchesFullPath)
{
    TierGuard guard;
    TextureMap tex = makeTex(WrapMode::ClampToEdge);
    TextureSampler s(tex);

    SplitMix64 rng(23);
    std::vector<Vec2> uvs;
    for (int i = 0; i < 37; ++i)
        uvs.push_back({rng.nextFloat(-0.2f, 1.2f),
                       rng.nextFloat(-0.2f, 1.2f)});
    const LodSelect sel = s.selectLod(0.7f);
    const int n = static_cast<int>(uvs.size());

    for (simd::SimdTier tier : runnableTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        simd::setActiveTier(tier);
        simd::QuadFilter qf;

        std::vector<TrilinearSample> full(uvs.size());
        FootprintMemo full_memo;
        qf.filterSamples(s, uvs.data(), n, sel, full_memo, full.data());

        std::vector<TexelAddrSet> addrs(uvs.size());
        std::vector<Color4f> colors(uvs.size());
        FootprintMemo compact_memo;
        qf.filterSamplesAddrs(s, uvs.data(), n, sel, compact_memo,
                              addrs.data(), colors.data());

        for (int i = 0; i < n; ++i) {
            SCOPED_TRACE("sample " + std::to_string(i));
            expectColorEqual(full[i].color, colors[i], "color");
            for (int k = 0; k < 8; ++k)
                EXPECT_EQ(full[i].texels[k].addr, addrs[i][k])
                    << "texel " << k;
        }
        EXPECT_EQ(compact_memo.lookups(), full_memo.lookups());
        EXPECT_EQ(compact_memo.hits(), full_memo.hits());
    }
}

namespace
{

/** A deterministic on-screen triangle with non-trivial w variation. */
simd::EdgeTri
makeTri(SplitMix64 &rng, int w, int h)
{
    float x[3], y[3];
    for (int v = 0; v < 3; ++v) {
        x[v] = rng.nextFloat(0.0f, static_cast<float>(w));
        y[v] = rng.nextFloat(0.0f, static_cast<float>(h));
    }
    // Twice the signed area; regenerate via the caller on degenerates.
    float area2 = (x[1] - x[0]) * (y[2] - y[0]) -
        (y[1] - y[0]) * (x[2] - x[0]);
    simd::EdgeTri tri{};
    tri.ax = x[0]; tri.ay = y[0];
    tri.bx = x[1]; tri.by = y[1];
    tri.cx = x[2]; tri.cy = y[2];
    tri.inv_area = area2 != 0.0f ? 1.0f / area2 : 0.0f;
    tri.z0 = rng.nextFloat(0.05f, 0.95f);
    tri.z1 = rng.nextFloat(0.05f, 0.95f);
    tri.z2 = rng.nextFloat(0.05f, 0.95f);
    float w0 = rng.nextFloat(0.5f, 4.0f);
    float w1 = rng.nextFloat(0.5f, 4.0f);
    float w2 = rng.nextFloat(0.5f, 4.0f);
    tri.iw0 = 1.0f / w0; tri.iw1 = 1.0f / w1; tri.iw2 = 1.0f / w2;
    tri.uw0 = rng.nextFloat() * tri.iw0;
    tri.uw1 = rng.nextFloat() * tri.iw1;
    tri.uw2 = rng.nextFloat() * tri.iw2;
    tri.vw0 = rng.nextFloat() * tri.iw0;
    tri.vw1 = rng.nextFloat() * tri.iw1;
    tri.vw2 = rng.nextFloat() * tri.iw2;
    return tri;
}

} // namespace

// edge_quad: every tier must reproduce the scalar kernel's uv/depth
// bits and coverage mask on full quads, window-clipped quads (the
// right/bottom edge of an odd-sized walk window) and quads entirely
// outside the triangle.
TEST(SimdKernelTest, EdgeQuadMatchesScalarAllTiers)
{
    TierGuard guard;
    constexpr int kW = 33, kH = 17; // odd: exercises clipped quads
    SplitMix64 rng(41);
    std::vector<simd::EdgeTri> tris;
    for (int t = 0; t < 8; ++t)
        tris.push_back(makeTri(rng, kW, kH));

    for (const simd::EdgeTri &tri : tris) {
        // Scalar reference over the whole window.
        std::vector<simd::EdgeQuadOut> want;
        simd::setActiveTier(simd::SimdTier::Scalar);
        const simd::KernelOps &ref = simd::activeKernels();
        for (int qy = 0; qy < kH; qy += 2)
            for (int qx = 0; qx < kW; qx += 2) {
                simd::EdgeQuadOut o{};
                ref.edge_quad(tri, qx, qy, 0, 0, kW - 1, kH - 1, o);
                want.push_back(o);
            }

        for (simd::SimdTier tier : runnableTiers()) {
            SCOPED_TRACE(simd::tierName(tier));
            simd::setActiveTier(tier);
            const simd::KernelOps &ops = simd::activeKernels();
            std::size_t qi = 0;
            for (int qy = 0; qy < kH; qy += 2)
                for (int qx = 0; qx < kW; qx += 2, ++qi) {
                    SCOPED_TRACE("quad (" + std::to_string(qx) + ", " +
                                 std::to_string(qy) + ")");
                    simd::EdgeQuadOut got{};
                    ops.edge_quad(tri, qx, qy, 0, 0, kW - 1, kH - 1,
                                  got);
                    EXPECT_EQ(got.coverage, want[qi].coverage);
                    for (int i = 0; i < 4; ++i) {
                        expectBitEqual(got.u[i], want[qi].u[i], "u");
                        expectBitEqual(got.v[i], want[qi].v[i], "v");
                        expectBitEqual(got.depth[i], want[qi].depth[i],
                                       "depth");
                    }
                }
        }
    }
}

// fill_color / fill_depth: byte-exact fills for counts around and far
// from the vector width, with untouched bytes beyond the fill verified
// via sentinel values.
TEST(SimdKernelTest, FillKernelsMatchScalarAllTiers)
{
    TierGuard guard;
    const float rgba[4] = {0.125f, 0.25f, -0.0f, 1.0f};
    const int counts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 129};

    for (simd::SimdTier tier : runnableTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        simd::setActiveTier(tier);
        const simd::KernelOps &ops = simd::activeKernels();
        for (int n : counts) {
            SCOPED_TRACE("count " + std::to_string(n));
            std::vector<float> color(static_cast<std::size_t>(n) * 4 + 8,
                                     -99.0f);
            ops.fill_color(color.data(), n, rgba);
            for (int i = 0; i < n; ++i)
                for (int c = 0; c < 4; ++c)
                    expectBitEqual(color[static_cast<std::size_t>(i) * 4 +
                                         static_cast<std::size_t>(c)],
                                   rgba[c], "fill_color");
            for (std::size_t i = static_cast<std::size_t>(n) * 4;
                 i < color.size(); ++i)
                expectBitEqual(color[i], -99.0f, "fill_color overrun");

            std::vector<float> depth(static_cast<std::size_t>(n) + 8,
                                     -99.0f);
            ops.fill_depth(depth.data(), n, 1.0f);
            for (int i = 0; i < n; ++i)
                expectBitEqual(depth[static_cast<std::size_t>(i)], 1.0f,
                               "fill_depth");
            for (std::size_t i = static_cast<std::size_t>(n);
                 i < depth.size(); ++i)
                expectBitEqual(depth[i], -99.0f, "fill_depth overrun");
        }
    }
}

// depth_quad + scatter_quad: the pass mask, the stored depths and the
// scattered colors must match the scalar kernel for every incoming
// mask shape, including exact-tie depths (which must fail the strict
// less-than test) and negative zeros.
TEST(SimdKernelTest, DepthScatterQuadMatchScalarAllTiers)
{
    TierGuard guard;
    SplitMix64 rng(43);

    for (int trial = 0; trial < 64; ++trial) {
        SCOPED_TRACE("trial " + std::to_string(trial));
        float stored[4], incoming[4], rgba[16];
        for (int i = 0; i < 4; ++i) {
            stored[i] = rng.nextFloat();
            // Mix strictly-less, equal (must fail) and greater lanes.
            int kind = static_cast<int>(rng.next() % 3);
            incoming[i] = kind == 0 ? stored[i] * 0.5f
                : kind == 1 ? stored[i]
                            : stored[i] + 0.25f;
        }
        for (float &c : rgba)
            c = rng.nextFloat();

        // Scalar reference.
        simd::setActiveTier(simd::SimdTier::Scalar);
        float ref_d0[2] = {stored[0], stored[1]};
        float ref_d1[2] = {stored[2], stored[3]};
        unsigned want_mask = simd::activeKernels().depth_quad(
            ref_d0, ref_d1, incoming);
        float ref_c0[8], ref_c1[8];
        std::fill(ref_c0, ref_c0 + 8, -1.0f);
        std::fill(ref_c1, ref_c1 + 8, -1.0f);
        simd::activeKernels().scatter_quad(ref_c0, ref_c1, rgba,
                                           want_mask);

        for (simd::SimdTier tier : runnableTiers()) {
            SCOPED_TRACE(simd::tierName(tier));
            simd::setActiveTier(tier);
            const simd::KernelOps &ops = simd::activeKernels();
            float d0[2] = {stored[0], stored[1]};
            float d1[2] = {stored[2], stored[3]};
            unsigned mask = ops.depth_quad(d0, d1, incoming);
            EXPECT_EQ(mask, want_mask);
            expectBitEqual(d0[0], ref_d0[0], "depth row0");
            expectBitEqual(d0[1], ref_d0[1], "depth row0");
            expectBitEqual(d1[0], ref_d1[0], "depth row1");
            expectBitEqual(d1[1], ref_d1[1], "depth row1");

            float c0[8], c1[8];
            std::fill(c0, c0 + 8, -1.0f);
            std::fill(c1, c1 + 8, -1.0f);
            ops.scatter_quad(c0, c1, rgba, mask);
            for (int i = 0; i < 8; ++i) {
                expectBitEqual(c0[i], ref_c0[i], "scatter row0");
                expectBitEqual(c1[i], ref_c1[i], "scatter row1");
            }
        }

        // Every one of the 16 masks must scatter exactly its lanes.
        for (unsigned mask = 0; mask < 16; ++mask) {
            simd::setActiveTier(simd::SimdTier::Scalar);
            float w0[8], w1[8];
            std::fill(w0, w0 + 8, -1.0f);
            std::fill(w1, w1 + 8, -1.0f);
            simd::activeKernels().scatter_quad(w0, w1, rgba, mask);
            for (simd::SimdTier tier : runnableTiers()) {
                SCOPED_TRACE(simd::tierName(tier));
                simd::setActiveTier(tier);
                float g0[8], g1[8];
                std::fill(g0, g0 + 8, -1.0f);
                std::fill(g1, g1 + 8, -1.0f);
                simd::activeKernels().scatter_quad(g0, g1, rgba, mask);
                for (int i = 0; i < 8; ++i) {
                    expectBitEqual(g0[i], w0[i], "mask scatter row0");
                    expectBitEqual(g1[i], w1[i], "mask scatter row1");
                }
            }
        }
    }
}

// ssim_row: bit identity across tiers for the horizontal (stride 1)
// and vertical (stride = width) shapes, full and edge-sliced kernels,
// and row lengths off the vector width.
TEST(SimdKernelTest, SsimRowMatchesScalarAllTiers)
{
    TierGuard guard;
    constexpr int kWidth = 37, kRows = 16, kTaps = 11;
    SplitMix64 rng(47);
    std::vector<float> src(static_cast<std::size_t>(kWidth) * kRows);
    for (float &v : src)
        v = rng.nextFloat();
    float k[kTaps];
    float wsum_full = 0.0f;
    for (int t = 0; t < kTaps; ++t) {
        k[t] = rng.nextFloat(0.01f, 1.0f);
        wsum_full += k[t];
    }

    struct Shape { int n, stride, taps; };
    const Shape shapes[] = {
        {kWidth - kTaps + 1, 1, kTaps}, // horizontal interior
        {kWidth, kWidth, kTaps},        // vertical, full kernel
        {kWidth, kWidth, 5},            // vertical, edge-sliced kernel
        {3, 1, kTaps},                  // shorter than any vector width
        {1, 1, 2},                      // single output
    };

    for (const Shape &sh : shapes) {
        SCOPED_TRACE("n=" + std::to_string(sh.n) + " stride=" +
                     std::to_string(sh.stride) + " taps=" +
                     std::to_string(sh.taps));
        float wsum = sh.taps == kTaps ? wsum_full : wsum_full * 0.5f;
        std::vector<float> want(static_cast<std::size_t>(sh.n));
        simd::setActiveTier(simd::SimdTier::Scalar);
        simd::activeKernels().ssim_row(src.data(), want.data(), sh.n,
                                       sh.stride, k, sh.taps, wsum);
        for (simd::SimdTier tier : runnableTiers()) {
            SCOPED_TRACE(simd::tierName(tier));
            simd::setActiveTier(tier);
            std::vector<float> got(static_cast<std::size_t>(sh.n),
                                   -5.0f);
            simd::activeKernels().ssim_row(src.data(), got.data(), sh.n,
                                           sh.stride, k, sh.taps, wsum);
            for (int i = 0; i < sh.n; ++i)
                expectBitEqual(got[static_cast<std::size_t>(i)],
                               want[static_cast<std::size_t>(i)],
                               "ssim_row");
        }
    }
}
