/**
 * @file
 * Unit tests for mesh builders and procedural game scenes.
 */

#include <gtest/gtest.h>

#include "scenes/meshes.hh"
#include "scenes/scenes.hh"

using namespace pargpu;

TEST(MeshTest, GridHasExpectedCounts)
{
    Mesh m = makeGrid({0, 0, 0}, {1, 0, 0}, {0, 0, 1}, 4, 3, 2.0f, 3.0f,
                      0);
    EXPECT_EQ(m.vertices.size(), 5u * 4u);
    EXPECT_EQ(m.numTriangles(), 4u * 3u * 2u);
    EXPECT_EQ(m.indices.size(), m.numTriangles() * 3);
}

TEST(MeshTest, GridUvSpansRequestedScale)
{
    Mesh m = makeGrid({0, 0, 0}, {1, 0, 0}, {0, 0, 1}, 2, 2, 8.0f, 4.0f,
                      0);
    float max_u = 0.0f, max_v = 0.0f;
    for (const Vertex &v : m.vertices) {
        max_u = std::max(max_u, v.uv.x);
        max_v = std::max(max_v, v.uv.y);
    }
    EXPECT_FLOAT_EQ(max_u, 8.0f);
    EXPECT_FLOAT_EQ(max_v, 4.0f);
}

TEST(MeshTest, GridIndicesInRange)
{
    Mesh m = makeGrid({0, 0, 0}, {2, 0, 0}, {0, 1, 0}, 5, 7, 1, 1, 0);
    for (std::uint32_t i : m.indices)
        EXPECT_LT(i, m.vertices.size());
}

TEST(MeshTest, BoxHasSixFaces)
{
    Mesh m;
    m.texture_id = 0;
    appendBox(m, {0, 0, 0}, {1, 1, 1}, 1.0f);
    EXPECT_EQ(m.numTriangles(), 12u);
    EXPECT_EQ(m.vertices.size(), 24u);
}

TEST(MeshTest, BoxVerticesWithinExtents)
{
    Mesh m;
    appendBox(m, {1, 2, 3}, {0.5f, 1.0f, 2.0f}, 1.0f);
    for (const Vertex &v : m.vertices) {
        EXPECT_GE(v.pos.x, 0.5f - 1e-5f);
        EXPECT_LE(v.pos.x, 1.5f + 1e-5f);
        EXPECT_GE(v.pos.y, 1.0f - 1e-5f);
        EXPECT_LE(v.pos.y, 3.0f + 1e-5f);
        EXPECT_GE(v.pos.z, 1.0f - 1e-5f);
        EXPECT_LE(v.pos.z, 5.0f + 1e-5f);
    }
}

TEST(MeshTest, AppendMeshRebasesIndices)
{
    Mesh a = makeGrid({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 1, 1, 1, 1, 0);
    Mesh b = makeGrid({5, 0, 0}, {1, 0, 0}, {0, 1, 0}, 1, 1, 1, 1, 0);
    std::size_t averts = a.vertices.size();
    appendMesh(a, b);
    EXPECT_EQ(a.vertices.size(), 2 * averts);
    // Later indices must reference the second vertex block.
    bool any_rebased = false;
    for (std::size_t i = 6; i < a.indices.size(); ++i)
        any_rebased |= a.indices[i] >= averts;
    EXPECT_TRUE(any_rebased);
}

class GameSceneTest : public testing::TestWithParam<GameId>
{
};

TEST_P(GameSceneTest, TraceIsWellFormed)
{
    GameTrace t = buildGameTrace(GetParam(), 320, 240, 2);
    EXPECT_FALSE(t.scene.draws.empty());
    EXPECT_FALSE(t.scene.textures.empty());
    EXPECT_EQ(t.cameras.size(), 2u);
    EXPECT_EQ(t.recipes.size(), t.scene.textures.size());
    EXPECT_EQ(t.width, 320);
    EXPECT_EQ(t.height, 240);
    // Every draw references a valid texture.
    for (const DrawCall &d : t.scene.draws) {
        EXPECT_GE(d.mesh.texture_id, 0);
        EXPECT_LT(d.mesh.texture_id,
                  static_cast<int>(t.scene.textures.size()));
        EXPECT_FALSE(d.mesh.vertices.empty());
        EXPECT_EQ(d.mesh.indices.size() % 3, 0u);
    }
}

TEST_P(GameSceneTest, TexturesBoundAtDisjointAddresses)
{
    GameTrace t = buildGameTrace(GetParam(), 320, 240, 1);
    for (std::size_t i = 0; i + 1 < t.scene.textures.size(); ++i) {
        const TextureMap &a = *t.scene.textures[i];
        const TextureMap &b = *t.scene.textures[i + 1];
        EXPECT_GE(b.baseAddr(), a.baseAddr() + a.sizeBytes());
    }
}

TEST_P(GameSceneTest, DeterministicAcrossBuilds)
{
    GameTrace a = buildGameTrace(GetParam(), 320, 240, 2);
    GameTrace b = buildGameTrace(GetParam(), 320, 240, 2);
    ASSERT_EQ(a.scene.draws.size(), b.scene.draws.size());
    ASSERT_EQ(a.cameras.size(), b.cameras.size());
    for (std::size_t i = 0; i < a.scene.draws.size(); ++i) {
        EXPECT_EQ(a.scene.draws[i].mesh.vertices.size(),
                  b.scene.draws[i].mesh.vertices.size());
    }
    for (std::size_t i = 0; i < a.cameras.size(); ++i) {
        EXPECT_FLOAT_EQ(a.cameras[i].eye.x, b.cameras[i].eye.x);
        EXPECT_FLOAT_EQ(a.cameras[i].eye.z, b.cameras[i].eye.z);
    }
}

TEST_P(GameSceneTest, CameraMovesAcrossFrames)
{
    GameTrace t = buildGameTrace(GetParam(), 320, 240, 3);
    ASSERT_EQ(t.cameras.size(), 3u);
    float d01 = (t.cameras[1].eye - t.cameras[0].eye).length();
    EXPECT_GT(d01, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    AllGames, GameSceneTest,
    testing::Values(GameId::HL2, GameId::Doom3, GameId::Grid, GameId::Nfs,
                    GameId::Stalker, GameId::Ut3, GameId::Wolf,
                    GameId::RBench));

TEST(PaperBenchmarksTest, MatchesTableTwo)
{
    auto list = paperBenchmarks();
    EXPECT_EQ(list.size(), 11u); // 3 + 3 HL2/doom3 resolutions + 5 games.
    int hl2 = 0, doom3 = 0;
    for (const BenchmarkEntry &e : list) {
        if (e.id == GameId::HL2)
            ++hl2;
        if (e.id == GameId::Doom3)
            ++doom3;
    }
    EXPECT_EQ(hl2, 3);
    EXPECT_EQ(doom3, 3);
}

TEST(GameAbbrTest, NamesMatchPaperTable)
{
    EXPECT_STREQ(gameAbbr(GameId::HL2), "HL2");
    EXPECT_STREQ(gameAbbr(GameId::Doom3), "doom3");
    EXPECT_STREQ(gameAbbr(GameId::Stalker), "stal");
    EXPECT_STREQ(gameAbbr(GameId::Wolf), "wolf");
}

TEST(GameSceneDeathTest, RejectsInvalidDimensions)
{
    EXPECT_EXIT(buildGameTrace(GameId::HL2, 0, 240, 1),
                testing::ExitedWithCode(1), "invalid");
}
