/**
 * @file
 * Unit tests for the deterministic thread pool: slot ordering, exception
 * propagation, nested-parallelism safety, worker-count edge cases, and
 * the process-default concurrency knobs.
 */

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.hh"

using namespace pargpu;

namespace
{

std::vector<int>
serialReference(std::size_t n)
{
    std::vector<int> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<int>(i * i % 977);
    return v;
}

} // namespace

TEST(ThreadPool, SlotsMatchSerialAcrossWorkerCounts)
{
    const std::size_t n = 1000;
    std::vector<int> want = serialReference(n);
    for (unsigned workers : {0u, 1u, 3u, 7u}) {
        ThreadPool pool(workers);
        for (std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, n, n + 5}) {
            std::vector<int> got(n, -1);
            pool.parallelFor(n, chunk, [&](std::size_t i) {
                got[i] = static_cast<int>(i * i % 977);
            });
            EXPECT_EQ(got, want) << "workers=" << workers
                                 << " chunk=" << chunk;
        }
    }
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ZeroChunkIsTreatedAsOne)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(10, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.parallelFor(100, 4, [](std::size_t i) {
            if (i == 37)
                throw std::runtime_error("boom");
        }),
        std::runtime_error);

    // The pool is still usable after a failed loop.
    std::atomic<int> calls{0};
    pool.parallelFor(50, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 50);
}

TEST(ThreadPool, LowestChunkExceptionWins)
{
    ThreadPool pool(3);
    // Chunks of 10: index 12 is in chunk 1, index 77 in chunk 7. The
    // rethrown error must come from the lowest faulting chunk regardless
    // of completion order.
    try {
        pool.parallelFor(100, 10, [](std::size_t i) {
            if (i == 12)
                throw std::runtime_error("chunk1");
            if (i == 77)
                throw std::runtime_error("chunk7");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "chunk1");
    }
}

TEST(ThreadPool, NestedParallelForRunsInlineOnWorkers)
{
    ThreadPool pool(4);
    const std::size_t outer = 8, inner = 32;
    std::vector<std::vector<int>> got(outer,
                                      std::vector<int>(inner, -1));
    std::atomic<int> worker_nested{0};
    pool.parallelFor(outer, 1, [&](std::size_t o) {
        bool on_worker = ThreadPool::inWorker();
        pool.parallelFor(inner, 4, [&](std::size_t i) {
            // Inner loops on a worker must run inline on that worker.
            if (on_worker) {
                EXPECT_TRUE(ThreadPool::inWorker());
            }
            got[o][i] = static_cast<int>(o * inner + i);
        });
        if (on_worker)
            ++worker_nested;
    });
    for (std::size_t o = 0; o < outer; ++o)
        for (std::size_t i = 0; i < inner; ++i)
            EXPECT_EQ(got[o][i], static_cast<int>(o * inner + i));
}

TEST(ThreadPool, CallerIsNotAWorker)
{
    EXPECT_FALSE(ThreadPool::inWorker());
    ThreadPool pool(2);
    bool worker_seen = false;
    std::mutex mu;
    pool.parallelFor(64, 1, [&](std::size_t) {
        if (ThreadPool::inWorker()) {
            std::lock_guard<std::mutex> lk(mu);
            worker_seen = true;
        }
    });
    // With 2 workers and 64 single-index chunks, at least one chunk ran
    // on a worker thread in practice; the caller flag must stay false.
    EXPECT_FALSE(ThreadPool::inWorker());
    (void)worker_seen;
}

TEST(ThreadPool, EnsureWorkersGrowsThePool)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workerCount(), 1u);
    pool.ensureWorkers(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    pool.ensureWorkers(2); // Never shrinks.
    EXPECT_EQ(pool.workerCount(), 4u);

    std::vector<int> got(100, -1);
    pool.parallelFor(100, 3, [&](std::size_t i) {
        got[i] = static_cast<int>(i);
    });
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(ThreadPool, MaxThreadsOneRunsSerial)
{
    ThreadPool pool(4);
    // With a cap of one thread everything runs on the caller.
    bool saw_worker = false;
    pool.parallelFor(32, 1, [&](std::size_t) {
        if (ThreadPool::inWorker())
            saw_worker = true;
    }, 1);
    EXPECT_FALSE(saw_worker);
}

TEST(ThreadPool, DefaultThreadsOverride)
{
    unsigned before = ThreadPool::defaultThreads();
    EXPECT_GE(before, 1u);
    ThreadPool::setDefaultThreads(3);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    ThreadPool::setDefaultThreads(0); // Back to env/hardware default.
    EXPECT_EQ(ThreadPool::defaultThreads(), before);
}

TEST(ThreadPool, StaticRunMatchesSerial)
{
    const std::size_t n = 500;
    std::vector<int> want = serialReference(n);
    for (unsigned threads : {1u, 4u}) {
        std::vector<int> got(n, -1);
        ThreadPool::run(n, 16, [&](std::size_t i) {
            got[i] = static_cast<int>(i * i % 977);
        }, threads);
        EXPECT_EQ(got, want) << "threads=" << threads;
    }
}
