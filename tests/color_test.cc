/**
 * @file
 * Unit tests for RGBA color types and packing.
 */

#include <gtest/gtest.h>

#include "common/color.hh"

using namespace pargpu;

TEST(Color4fTest, DefaultIsOpaqueBlack)
{
    Color4f c;
    EXPECT_FLOAT_EQ(c.r, 0.0f);
    EXPECT_FLOAT_EQ(c.g, 0.0f);
    EXPECT_FLOAT_EQ(c.b, 0.0f);
    EXPECT_FLOAT_EQ(c.a, 1.0f);
}

TEST(Color4fTest, ClampedBoundsChannels)
{
    Color4f c{-0.5f, 1.5f, 0.5f, 2.0f};
    Color4f k = c.clamped();
    EXPECT_FLOAT_EQ(k.r, 0.0f);
    EXPECT_FLOAT_EQ(k.g, 1.0f);
    EXPECT_FLOAT_EQ(k.b, 0.5f);
    EXPECT_FLOAT_EQ(k.a, 1.0f);
}

TEST(Color4fTest, LumaOfPrimaries)
{
    EXPECT_NEAR(Color4f(1, 0, 0).luma(), 0.299f, 1e-6f);
    EXPECT_NEAR(Color4f(0, 1, 0).luma(), 0.587f, 1e-6f);
    EXPECT_NEAR(Color4f(0, 0, 1).luma(), 0.114f, 1e-6f);
    EXPECT_NEAR(Color4f(1, 1, 1).luma(), 1.0f, 1e-6f);
}

TEST(PackRGBA8Test, RoundTripExactAtQuantizationPoints)
{
    for (int v = 0; v <= 255; v += 17) {
        Color4f c{v / 255.0f, v / 255.0f, v / 255.0f, v / 255.0f};
        RGBA8 p = packRGBA8(c);
        EXPECT_EQ(p.r, v);
        Color4f u = unpackRGBA8(p);
        EXPECT_NEAR(u.r, c.r, 1e-6f);
    }
}

TEST(PackRGBA8Test, ClampsOutOfRange)
{
    RGBA8 lo = packRGBA8({-1.0f, -0.1f, 0.0f, -5.0f});
    EXPECT_EQ(lo.r, 0);
    EXPECT_EQ(lo.g, 0);
    EXPECT_EQ(lo.a, 0);
    RGBA8 hi = packRGBA8({2.0f, 1.1f, 1.0f, 9.0f});
    EXPECT_EQ(hi.r, 255);
    EXPECT_EQ(hi.g, 255);
    EXPECT_EQ(hi.b, 255);
    EXPECT_EQ(hi.a, 255);
}

TEST(PackRGBA8Test, RoundsToNearest)
{
    // 0.5/255 should round down to 0; 0.6/255 rounds to 1.
    EXPECT_EQ(packRGBA8({0.4f / 255.0f, 0, 0}).r, 0);
    EXPECT_EQ(packRGBA8({0.6f / 255.0f, 0, 0}).r, 1);
}

TEST(ColorLerpTest, EndpointsAndMidpoint)
{
    Color4f a{0, 0, 0, 0}, b{1, 1, 1, 1};
    Color4f m = lerp(a, b, 0.5f);
    EXPECT_FLOAT_EQ(m.r, 0.5f);
    EXPECT_FLOAT_EQ(lerp(a, b, 0.0f).r, 0.0f);
    EXPECT_FLOAT_EQ(lerp(a, b, 1.0f).r, 1.0f);
}
