/**
 * @file
 * Helper TU for contract_test compiled with contracts force-disabled:
 * proves the macros are true no-ops in unchecked builds — operands are
 * never evaluated, violations never fire, and no Site objects register.
 */

#define PARGPU_FORCE_UNCHECKED 1
#include "common/contract.hh"

namespace pargpu_contract_test
{

int
uncheckedEvaluations()
{
    int evals = 0;
    int msg_evals = 0;
    // Every operand has a side effect; none may run in an unchecked TU.
    PARGPU_ASSERT(++evals > 0, "side effect ", ++msg_evals);
    PARGPU_INVARIANT((++evals, true), "side effect");
    PARGPU_CHECK_RANGE(++evals, 0, 100, "side effect");
    return evals + msg_evals;
}

bool
uncheckedViolationSurvives()
{
    // All three violated contracts must compile to nothing: reaching the
    // return statement is the test.
    PARGPU_ASSERT(false, "must not fire");
    PARGPU_INVARIANT(false, "must not fire");
    PARGPU_CHECK_RANGE(42, 0, 1, "must not fire");
    return true;
}

} // namespace pargpu_contract_test
