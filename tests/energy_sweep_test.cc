/**
 * @file
 * Parameterized property tests on the energy model: component
 * proportionality, superposition, and scaling behaviour.
 */

#include <gtest/gtest.h>

#include "power/energy.hh"

using namespace pargpu;

namespace
{

// Activity mix proportioned like a real rendered frame (~3 trilinear
// samples and ~6 L1 accesses per frame cycle, as the HL2 workload shows).
FrameStats
statsScaledBy(double k)
{
    FrameStats s;
    auto u = [k](double v) { return static_cast<std::uint64_t>(v * k); };
    s.total_cycles = u(500'000);
    s.shader_busy_cycles = u(400'000);
    s.trilinear_samples = u(1'500'000);
    s.addr_ops = u(12'000'000);
    s.table_accesses = u(400'000);
    s.l1_hits = u(3'000'000);
    s.l1_misses = u(280'000);
    s.llc_hits = u(180'000);
    s.llc_misses = u(100'000);
    s.dram_reads = u(100'000);
    s.dram_row_hits = u(80'000);
    s.traffic_texture = u(100'000) * 64;
    return s;
}

} // namespace

class EnergyScaleTest : public testing::TestWithParam<double>
{
};

TEST_P(EnergyScaleTest, EnergyScalesLinearlyWithActivity)
{
    double k = GetParam();
    EnergyBreakdown unit = computeEnergy(statsScaledBy(1.0));
    EnergyBreakdown scaled = computeEnergy(statsScaledBy(k));
    EXPECT_NEAR(scaled.total_nj(), unit.total_nj() * k,
                unit.total_nj() * k * 0.01);
    EXPECT_NEAR(scaled.static_nj, unit.static_nj * k,
                unit.static_nj * k * 0.01);
    EXPECT_NEAR(scaled.dram_nj, unit.dram_nj * k,
                unit.dram_nj * k * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Scales, EnergyScaleTest,
                         testing::Values(0.5, 2.0, 4.0, 10.0));

TEST(EnergySuperpositionTest, ComponentsAreIndependent)
{
    // Zeroing one activity class removes exactly its component.
    FrameStats s = statsScaledBy(1.0);
    EnergyBreakdown full = computeEnergy(s);

    FrameStats no_table = s;
    no_table.table_accesses = 0;
    EnergyBreakdown e = computeEnergy(no_table);
    EXPECT_DOUBLE_EQ(e.table_nj, 0.0);
    EXPECT_DOUBLE_EQ(e.shader_nj, full.shader_nj);
    EXPECT_DOUBLE_EQ(e.dram_nj, full.dram_nj);
    EXPECT_NEAR(full.total_nj() - e.total_nj(), full.table_nj, 1e-9);
}

TEST(EnergySuperpositionTest, StaticShareIsSubstantial)
{
    // The Fig. 20 mechanism — PATU's savings come mostly from shorter
    // frames — requires a meaningful static share; pin it between 20 %
    // and 80 % on a representative activity mix.
    EnergyBreakdown e = computeEnergy(statsScaledBy(1.0));
    double share = e.static_nj / e.total_nj();
    EXPECT_GT(share, 0.2);
    EXPECT_LT(share, 0.8);
}

TEST(EnergyPowerTest, PowerIndependentOfDurationForFixedRates)
{
    // Doubling both time and activity doubles energy, keeping power flat.
    FrameStats a = statsScaledBy(1.0);
    FrameStats b = statsScaledBy(2.0);
    double pa = averagePowerW(computeEnergy(a), a);
    double pb = averagePowerW(computeEnergy(b), b);
    EXPECT_NEAR(pa, pb, pa * 0.01);
}

TEST(EnergyPowerTest, HigherThroughputRaisesPower)
{
    // Same duration, more texel work: the Fig. 20 "PATU slightly raises
    // runtime power" mechanism.
    FrameStats lean = statsScaledBy(1.0);
    FrameStats busy = lean;
    busy.trilinear_samples *= 2;
    busy.l1_hits *= 2;
    EXPECT_GT(averagePowerW(computeEnergy(busy), busy),
              averagePowerW(computeEnergy(lean), lean));
}
