/**
 * @file
 * Property-based tests: parameterized sweeps over anisotropy ratios,
 * thresholds and sample distributions, checking the invariants the PATU
 * design relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/afssim.hh"
#include "core/hashtable.hh"
#include "core/patu.hh"
#include "common/rng.hh"
#include "texture/procedural.hh"
#include "texture/sampler.hh"

using namespace pargpu;

// ---------------------------------------------------------------------
// Anisotropy sweep: for any derivative pair, the sampler must maintain
// the structural invariants of Section IV-A.
class AnisotropySweep : public testing::TestWithParam<int>
{
};

TEST_P(AnisotropySweep, InvariantsHoldForRandomDerivatives)
{
    static TextureMap tex(128, 128,
                          generateTexture(TextureKind::Noise, 128, 5));
    TextureSampler s(tex);
    SplitMix64 rng(GetParam());

    for (int i = 0; i < 200; ++i) {
        Vec2 dx{rng.nextFloat(-0.2f, 0.2f), rng.nextFloat(-0.2f, 0.2f)};
        Vec2 dy{rng.nextFloat(-0.2f, 0.2f), rng.nextFloat(-0.2f, 0.2f)};
        AnisotropyInfo info = s.computeAnisotropy(dx, dy);

        // N in [1, 16]; pMax >= pMin; LOD ordering.
        EXPECT_GE(info.sampleSize, 1);
        EXPECT_LE(info.sampleSize, 16);
        EXPECT_GE(info.pMax, info.pMin);
        EXPECT_LE(info.lodAF, info.lodTF + 1e-5f);

        // N covers the axis ratio (when below the cap).
        float ratio = info.pMax / info.pMin;
        if (info.sampleSize < 16) {
            EXPECT_GE(static_cast<float>(info.sampleSize) + 1e-3f,
                      ratio - 1.0f);
        }

        // The AF filter produces exactly N samples whose mean position is
        // the request point.
        FilterResult r = s.filterAnisotropic({0.5f, 0.5f}, info);
        EXPECT_EQ(r.samples.size(),
                  static_cast<std::size_t>(info.sampleSize));
        float mu = 0, mv = 0;
        for (const TrilinearSample &ts : r.samples) {
            mu += ts.uv.x;
            mv += ts.uv.y;
            float wsum = 0;
            for (const TexelRef &t : ts.texels)
                wsum += t.weight;
            EXPECT_NEAR(wsum, 1.0f, 1e-4f);
        }
        EXPECT_NEAR(mu / r.samples.size(), 0.5f, 1e-4f);
        EXPECT_NEAR(mv / r.samples.size(), 0.5f, 1e-4f);

        // Filtered color within the texture's value range.
        EXPECT_GE(r.color.r, -1e-4f);
        EXPECT_LE(r.color.r, 1.0f + 1e-4f);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnisotropySweep,
                         testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// AF-SSIM(N) against the exact similarity-degree formula: the sample-size
// surrogate must be a monotone proxy of Eq. 5 evaluated at mu = N.
TEST(AfSsimProperty, SurrogateMatchesExactFormulaAtIntegerMu)
{
    for (int n = 1; n <= 16; ++n) {
        float surrogate = afSsimFromSampleSize(n);
        float exact = afSsimFromSimilarity(static_cast<float>(n));
        EXPECT_NEAR(surrogate, exact, 2e-4f) << "N=" << n;
    }
}

// ---------------------------------------------------------------------
// Txds over random count distributions: entropy-based similarity must be
// bounded, monotone under concentration, and consistent with the table.
class TxdsSweep : public testing::TestWithParam<int>
{
};

TEST_P(TxdsSweep, RandomDistributionsStayBounded)
{
    SplitMix64 rng(GetParam() * 977);
    for (int trial = 0; trial < 300; ++trial) {
        int n = 2 + static_cast<int>(rng.nextBounded(15));
        // Random partition of n samples into groups.
        TexelAddressTable table;
        int remaining = n;
        Addr base = 0x1000;
        while (remaining > 0) {
            int group = 1 + static_cast<int>(
                rng.nextBounded(static_cast<std::uint64_t>(remaining)));
            TexelAddrSet set;
            for (int i = 0; i < 8; ++i)
                set[i] = base + i * 4;
            for (int g = 0; g < group; ++g)
                table.insert(set);
            base += 0x100;
            remaining -= group;
        }
        std::vector<float> p = table.probabilityVector();
        float sum = 0;
        for (float pi : p)
            sum += pi;
        EXPECT_NEAR(sum, 1.0f, 1e-5f);

        float t = txds(p, n);
        EXPECT_GE(t, 0.0f);
        EXPECT_LE(t, 1.0f);
        float pred = afSsimFromTxds(t);
        EXPECT_GE(pred, 0.0f);
        EXPECT_LE(pred, 1.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxdsSweep, testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Decision-flow properties over the threshold range.
class ThresholdSweep : public testing::TestWithParam<float>
{
};

TEST_P(ThresholdSweep, DecisionsConsistentWithPredictions)
{
    float threshold = GetParam();
    PatuConfig cfg;
    cfg.scenario = DesignScenario::Patu;
    cfg.threshold = threshold;
    PatuUnit unit(cfg);

    for (int n = 1; n <= 16; ++n) {
        AnisotropyInfo info;
        info.anisoDegree = n;
        info.sampleSize = n;
        info.pMax = static_cast<float>(n);
        info.pMin = 1.0f;
        info.lodTF = std::log2(std::max(1.0f, info.pMax));
        info.lodAF = 0.0f;
        PixelDecision d = unit.preDecide(info);
        if (n == 1) {
            EXPECT_TRUE(d.approximate);
            continue;
        }
        if (afSsimFromSampleSize(n) > threshold) {
            EXPECT_TRUE(d.approximate) << "N=" << n;
            EXPECT_EQ(d.stage, DecisionStage::SampleArea);
        } else {
            EXPECT_FALSE(d.approximate) << "N=" << n;
            EXPECT_TRUE(d.need_distribution);
        }
    }
}

TEST_P(ThresholdSweep, ApproximationSetShrinksWithThreshold)
{
    // The set of sample sizes approximated at stage 1 is downward closed:
    // if N is approximated, so is every smaller N > 1.
    float threshold = GetParam();
    bool seen_keep = false;
    for (int n = 2; n <= 16; ++n) {
        bool approx = afSsimFromSampleSize(n) > threshold;
        if (!approx)
            seen_keep = true;
        if (seen_keep) {
            EXPECT_FALSE(approx) << "N=" << n;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         testing::Values(0.0f, 0.1f, 0.2f, 0.4f, 0.6f,
                                         0.8f, 0.95f));

// ---------------------------------------------------------------------
// Hash-table property: the probability vector always reflects the insert
// multiset regardless of order.
TEST(HashTableProperty, OrderIndependentDistribution)
{
    SplitMix64 rng(4242);
    for (int trial = 0; trial < 100; ++trial) {
        int n = 2 + static_cast<int>(rng.nextBounded(15));
        std::vector<TexelAddrSet> sets;
        for (int i = 0; i < n; ++i) {
            Addr base = 0x100 * (1 + rng.nextBounded(4));
            TexelAddrSet s;
            for (int k = 0; k < 8; ++k)
                s[k] = base + k * 4;
            sets.push_back(s);
        }
        TexelAddressTable fwd, rev;
        for (int i = 0; i < n; ++i)
            fwd.insert(sets[i]);
        for (int i = n - 1; i >= 0; --i)
            rev.insert(sets[i]);
        // Entropy (hence Txds) is order independent.
        float ef = entropyBits(fwd.probabilityVector());
        float er = entropyBits(rev.probabilityVector());
        EXPECT_NEAR(ef, er, 1e-5f);
    }
}

// ---------------------------------------------------------------------
// Sampler property: the trilinear footprint's texel addresses always
// match the texture's address calculator.
TEST(SamplerProperty, FootprintAddressesMatchTexture)
{
    TextureMap tex(64, 64, generateTexture(TextureKind::Bricks, 64, 9));
    tex.setBaseAddr(0x2000'0000);
    TextureSampler s(tex);
    SplitMix64 rng(31337);
    for (int i = 0; i < 500; ++i) {
        Vec2 uv{rng.nextFloat(-1.0f, 2.0f), rng.nextFloat(-1.0f, 2.0f)};
        float lod = rng.nextFloat(0.0f, 7.0f);
        TrilinearSample ts = s.trilinear(uv, lod);
        for (const TexelRef &t : ts.texels)
            EXPECT_EQ(t.addr, tex.texelAddr(t.level, t.x, t.y));
    }
}
