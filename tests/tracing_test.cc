/**
 * @file
 * Tests for the chrome-trace profiling hooks (common/tracing.hh): the
 * emitted JSON is structurally a chrome://tracing document, recording is
 * gated by Tracing::enable(), compiled-out macros record nothing, and —
 * the determinism contract — tracing never changes simulated results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/tracing.hh"
#include "harness/runner.hh"

using namespace pargpu;
using pargpu::trace::Tracing;

namespace pargpu_test
{
void disabledTracingBody(); // tracing_disabled_tu.cc
}

namespace
{

const GameTrace &
tinyTrace()
{
    static GameTrace t = buildGameTrace(GameId::Wolf, 128, 96, 2);
    return t;
}

/** RAII guard: leave the global collector off and empty after each test. */
struct TracingGuard
{
    ~TracingGuard()
    {
        Tracing::disable();
        Tracing::clear();
    }
};

} // namespace

TEST(TracingTest, DisabledByDefaultAndRecordsNothing)
{
    TracingGuard guard;
    ASSERT_FALSE(Tracing::enabled());
    {
        PARGPU_TRACE_SCOPE("test", "ignored");
        PARGPU_TRACE_COUNTER("test", "ignored.counter", 1);
        PARGPU_TRACE_INSTANT("test", "ignored_instant");
    }
    EXPECT_EQ(Tracing::eventCount(), 0u);
}

// Everything below the #ifndef exercises the compiled-in macro path and
// the pipeline's instrumentation; in a -DPARGPU_TRACING=OFF build those
// sites are no-ops by design, so the expectations only hold here.
#ifndef PARGPU_TRACING_DISABLED

TEST(TracingTest, SpanMacrosRecordWhenEnabled)
{
    TracingGuard guard;
    Tracing::enable();
    {
        PARGPU_TRACE_SCOPE("test", "outer");
        PARGPU_TRACE_SCOPE_F("test", "inner", 3);
    }
    PARGPU_TRACE_COUNTER("test", "count", 5);
    PARGPU_TRACE_INSTANT("test", "mark");
    EXPECT_EQ(Tracing::eventCount(), 4u);

    Tracing::clear();
    EXPECT_EQ(Tracing::eventCount(), 0u);
}

#endif // PARGPU_TRACING_DISABLED

TEST(TracingTest, EnableClearsPreviousBuffer)
{
    TracingGuard guard;
    Tracing::enable();
    Tracing::recordInstant("test", "stale");
    ASSERT_EQ(Tracing::eventCount(), 1u);
    Tracing::enable();
    EXPECT_EQ(Tracing::eventCount(), 0u);
}

TEST(TracingTest, CompiledOutMacrosRecordNothing)
{
    TracingGuard guard;
    Tracing::enable();
    pargpu_test::disabledTracingBody();
    EXPECT_EQ(Tracing::eventCount(), 0u);
}

#ifndef PARGPU_TRACING_DISABLED

TEST(TracingTest, JsonIsStructurallyAChromeTrace)
{
    TracingGuard guard;
    Tracing::enable();

    RunConfig cfg;
    cfg.scenario = DesignScenario::Patu;
    cfg.keep_images = false;
    cfg.threads = 1;
    runTrace(tinyTrace(), cfg);

    Tracing::disable();
    std::ostringstream os;
    Tracing::writeJson(os);

    std::string error;
    Json doc = Json::parse(os.str(), &error);
    ASSERT_TRUE(doc.isObject()) << error;
    ASSERT_TRUE(doc["traceEvents"].isArray());
    const auto &events = doc["traceEvents"].items();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(doc["displayTimeUnit"].str(), "ms");

    double prev_ts = -1.0;
    bool saw_frame_span = false, saw_dram_counter = false;
    for (const Json &e : events) {
        ASSERT_TRUE(e.isObject());
        EXPECT_TRUE(e["name"].isString());
        EXPECT_TRUE(e["cat"].isString());
        ASSERT_TRUE(e["ph"].isString());
        const std::string &ph = e["ph"].str();
        EXPECT_TRUE(ph == "X" || ph == "C" || ph == "i") << ph;
        ASSERT_TRUE(e["ts"].isNumber());
        EXPECT_GE(e["ts"].number(), prev_ts); // writeJson sorts by ts.
        prev_ts = e["ts"].number();
        EXPECT_TRUE(e["pid"].isNumber());
        EXPECT_TRUE(e["tid"].isNumber());
        if (ph == "X") {
            ASSERT_TRUE(e["dur"].isNumber());
            EXPECT_GE(e["dur"].number(), 0.0);
        }
        if (ph == "C") {
            ASSERT_TRUE(e["args"].isObject());
            EXPECT_TRUE(e["args"]["value"].isNumber());
        }
        if (ph == "i") {
            EXPECT_EQ(e["s"].str(), "t");
        }
        if (e["cat"].str() == "sim" && e["name"].str() == "frame")
            saw_frame_span = true;
        if (e["cat"].str() == "mem" && e["name"].str() == "dram.bytes")
            saw_dram_counter = true;
    }
    EXPECT_TRUE(saw_frame_span);
    EXPECT_TRUE(saw_dram_counter);
}

TEST(TracingTest, SpanArgsCarryTheValue)
{
    TracingGuard guard;
    Tracing::enable();
    {
        PARGPU_TRACE_SCOPE_F("test", "with_arg", 11);
    }
    Tracing::disable();
    std::ostringstream os;
    Tracing::writeJson(os);
    Json doc = Json::parse(os.str());
    ASSERT_EQ(doc["traceEvents"].items().size(), 1u);
    const Json &e = doc["traceEvents"][0];
    EXPECT_EQ(e["name"].str(), "with_arg");
    EXPECT_DOUBLE_EQ(e["args"]["value"].number(), 11.0);
}

#endif // PARGPU_TRACING_DISABLED

TEST(TracingTest, WriteFileRoundTrips)
{
    TracingGuard guard;
    Tracing::enable();
    Tracing::recordInstant("test", "filed");
    Tracing::disable();

    const std::string path = "tracing_test_out.json";
    ASSERT_TRUE(Tracing::writeFile(path));
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream ss;
    ss << f.rdbuf();
    std::string error;
    Json doc = Json::parse(ss.str(), &error);
    ASSERT_TRUE(doc.isObject()) << error;
    EXPECT_EQ(doc["traceEvents"].items().size(), 1u);
    std::remove(path.c_str());
}

// The determinism contract doubles as the overhead guard from the issue:
// the acceptance bound is a <= 1% simulated-cycle delta with tracing on,
// and because tracing observes host time only, the delta is exactly zero.
TEST(TracingTest, SimulatedResultsBitIdenticalWithTracingOn)
{
    TracingGuard guard;
    RunConfig cfg;
    cfg.scenario = DesignScenario::Patu;
    cfg.keep_images = false;
    cfg.threads = 1;

    ASSERT_FALSE(Tracing::enabled());
    RunResult off = runTrace(tinyTrace(), cfg);

    Tracing::enable();
    RunResult on = runTrace(tinyTrace(), cfg);
    Tracing::disable();
#ifndef PARGPU_TRACING_DISABLED
    EXPECT_GT(Tracing::eventCount(), 0u);
#endif

    ASSERT_EQ(off.frames.size(), on.frames.size());
    for (std::size_t i = 0; i < off.frames.size(); ++i) {
        EXPECT_EQ(off.frames[i].total_cycles, on.frames[i].total_cycles);
        EXPECT_EQ(off.frames[i].texels, on.frames[i].texels);
        EXPECT_EQ(off.frames[i].dram_reads, on.frames[i].dram_reads);
        EXPECT_EQ(off.frames[i].totalTraffic(), on.frames[i].totalTraffic());
    }
    EXPECT_DOUBLE_EQ(off.avg_cycles, on.avg_cycles);
    EXPECT_DOUBLE_EQ(off.total_energy_nj, on.total_energy_nj);
}
