/**
 * @file
 * Unit tests for the AF-SSIM prediction formulas (Section IV, Eq. 5-10).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/afssim.hh"

using namespace pargpu;

TEST(AfSsimSimilarityTest, PerfectSimilarityGivesOne)
{
    // mu = 1 means Y == X: AF-SSIM must be ~1 (Eq. 5).
    EXPECT_NEAR(afSsimFromSimilarity(1.0f), 1.0f, 1e-4f);
}

TEST(AfSsimSimilarityTest, DecreasesAwayFromOne)
{
    float at1 = afSsimFromSimilarity(1.0f);
    float at2 = afSsimFromSimilarity(2.0f);
    float at4 = afSsimFromSimilarity(4.0f);
    EXPECT_GT(at1, at2);
    EXPECT_GT(at2, at4);
}

TEST(AfSsimSimilarityTest, BoundedInUnitIntervalForNonNegativeMu)
{
    for (float mu = 0.0f; mu <= 20.0f; mu += 0.25f) {
        float v = afSsimFromSimilarity(mu);
        EXPECT_GE(v, 0.0f) << "mu=" << mu;
        EXPECT_LE(v, 1.0f + 1e-6f) << "mu=" << mu;
    }
}

TEST(AfSsimNTest, UnitSampleSizeGivesOne)
{
    // Eq. 6 at N = 1: (2/(1+1))^2 = 1.
    EXPECT_FLOAT_EQ(afSsimFromSampleSize(1), 1.0f);
}

TEST(AfSsimNTest, MatchesClosedForm)
{
    for (int n = 1; n <= 16; ++n) {
        float fn = static_cast<float>(n);
        float expect = std::pow(2.0f * fn / (fn * fn + 1.0f), 2.0f);
        EXPECT_NEAR(afSsimFromSampleSize(n), expect, 1e-6f) << "N=" << n;
    }
}

TEST(AfSsimNTest, StrictlyDecreasingInN)
{
    for (int n = 1; n < 16; ++n) {
        EXPECT_GT(afSsimFromSampleSize(n), afSsimFromSampleSize(n + 1))
            << "N=" << n;
    }
}

TEST(AfSsimNTest, N16IsSmall)
{
    // At the max AF level the prediction must mark the pixel clearly
    // perceivable: (32/257)^2 ~ 0.0155.
    EXPECT_NEAR(afSsimFromSampleSize(16), 0.0155f, 1e-3f);
}

TEST(AfSsimNDeathTest, RejectsZeroSampleSize)
{
    EXPECT_DEATH(afSsimFromSampleSize(0), "sample size");
}

TEST(EntropyTest, CertainEventHasZeroEntropy)
{
    EXPECT_FLOAT_EQ(entropyBits({1.0f}), 0.0f);
}

TEST(EntropyTest, UniformDistributionHitsUpperBound)
{
    // Eq. 8: uniform over M events gives log2(M).
    EXPECT_NEAR(entropyBits({0.25f, 0.25f, 0.25f, 0.25f}), 2.0f, 1e-6f);
    EXPECT_NEAR(entropyBits({0.5f, 0.5f}), 1.0f, 1e-6f);
}

TEST(EntropyTest, PaperExampleVector)
{
    // The Fig. 11 example: {0.6, 0.2, 0.2}.
    float e = entropyBits({0.6f, 0.2f, 0.2f});
    float expect = -(0.6f * std::log2(0.6f) + 2 * 0.2f * std::log2(0.2f));
    EXPECT_NEAR(e, expect, 1e-6f);
}

TEST(EntropyTest, ZeroProbabilitiesIgnored)
{
    EXPECT_NEAR(entropyBits({0.5f, 0.5f, 0.0f, 0.0f}), 1.0f, 1e-6f);
}

TEST(TxdsTest, AllSharedGivesOne)
{
    // Every AF sample shares one texel set: entropy 0, Txds = 1.
    EXPECT_FLOAT_EQ(txds({1.0f}, 8), 1.0f);
}

TEST(TxdsTest, AllDistinctGivesZero)
{
    // N distinct sets, uniform: entropy = log2(N), Txds = 0.
    std::vector<float> p(8, 1.0f / 8.0f);
    EXPECT_NEAR(txds(p, 8), 0.0f, 1e-6f);
}

TEST(TxdsTest, SampleSizeOneConvention)
{
    EXPECT_FLOAT_EQ(txds({1.0f}, 1), 1.0f);
}

TEST(TxdsTest, WithinUnitInterval)
{
    EXPECT_GE(txds({0.6f, 0.2f, 0.2f}, 5), 0.0f);
    EXPECT_LE(txds({0.6f, 0.2f, 0.2f}, 5), 1.0f);
}

TEST(TxdsTest, MoreConcentrationGivesHigherTxds)
{
    float concentrated = txds({0.8f, 0.1f, 0.1f}, 10);
    float spread = txds({0.4f, 0.3f, 0.3f}, 10);
    EXPECT_GT(concentrated, spread);
}

TEST(AfSsimTxdsTest, EndpointValues)
{
    // Eq. 10: Txds = 1 -> 1; Txds = 0 -> 0.
    EXPECT_FLOAT_EQ(afSsimFromTxds(1.0f), 1.0f);
    EXPECT_FLOAT_EQ(afSsimFromTxds(0.0f), 0.0f);
}

TEST(AfSsimTxdsTest, MonotonicallyIncreasing)
{
    float prev = -1.0f;
    for (float t = 0.0f; t <= 1.0f; t += 0.05f) {
        float v = afSsimFromTxds(t);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(AfSsimTxdsTest, ClampsOutOfRangeInputs)
{
    EXPECT_FLOAT_EQ(afSsimFromTxds(-0.5f), afSsimFromTxds(0.0f));
    EXPECT_FLOAT_EQ(afSsimFromTxds(1.5f), afSsimFromTxds(1.0f));
}

TEST(AfSsimConsistencyTest, NAndTxdsPredictionsShareObjective)
{
    // Both formulas approximate the same similarity degree, so their
    // values should agree at the extremes: no anisotropy <-> full overlap.
    EXPECT_NEAR(afSsimFromSampleSize(1), afSsimFromTxds(1.0f), 1e-6f);
}
