/**
 * @file
 * Edge-case tests for the rasterizer: degenerate triangles, clipping
 * corner cases, tile-boundary behaviour and coverage accounting.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/raster.hh"

using namespace pargpu;

namespace
{

Mat4
mvp()
{
    return Mat4::perspective(1.0f, 1.0f, 0.5f, 100.0f) *
        Mat4::lookAt({0, 0, 0}, {0, 0, -1}, {0, 1, 0});
}

int
setup(const Vertex tri[3], std::vector<SetupTriangle> &out,
      bool cull = true, int vp = 64)
{
    return setupTriangles(tri, mvp(), 1.0f, 0, FilterMode::Trilinear,
                          cull, vp, vp, out);
}

} // namespace

TEST(RasterEdgeTest, DegenerateZeroAreaTriangleRejected)
{
    Vertex tri[3] = {
        {{-1, 0, -5}, {0, 0}},
        {{0, 0, -5}, {0.5f, 0}},
        {{1, 0, -5}, {1, 0}}, // Collinear.
    };
    std::vector<SetupTriangle> out;
    EXPECT_EQ(setup(tri, out, false), 0);
}

TEST(RasterEdgeTest, DuplicateVerticesRejected)
{
    Vertex v{{0, 0, -5}, {0, 0}};
    Vertex tri[3] = {v, v, v};
    std::vector<SetupTriangle> out;
    EXPECT_EQ(setup(tri, out, false), 0);
}

TEST(RasterEdgeTest, TriangleFullyOffscreenRejected)
{
    Vertex tri[3] = {
        {{100, 100, -5}, {0, 0}},
        {{101, 100, -5}, {1, 0}},
        {{100, 101, -5}, {0, 1}},
    };
    std::vector<SetupTriangle> out;
    EXPECT_EQ(setup(tri, out), 0);
}

TEST(RasterEdgeTest, TwoVerticesBehindCameraStillClips)
{
    Vertex tri[3] = {
        {{-1, -1, -10}, {0, 0}},
        {{0, 1, 5}, {0.5f, 1}},  // Behind.
        {{1, -1, 5}, {1, 0}},    // Behind.
    };
    std::vector<SetupTriangle> out;
    // Clipping a triangle with one in-front vertex yields one triangle.
    EXPECT_EQ(setup(tri, out, false), 1);
}

TEST(RasterEdgeTest, TinySubPixelTriangleMayCoverNothing)
{
    // A triangle much smaller than a pixel: setup succeeds but coverage
    // may legitimately be empty; the walk must terminate regardless.
    Vertex tri[3] = {
        {{0.001f, 0.001f, -5}, {0, 0}},
        {{0.002f, 0.001f, -5}, {1, 0}},
        {{0.001f, 0.002f, -5}, {0, 1}},
    };
    std::vector<SetupTriangle> out;
    if (setup(tri, out, false) == 1) {
        int covered = 0;
        rasterizeTriangle(out[0], out[0].min_x, out[0].min_y,
                          out[0].max_x, out[0].max_y,
                          [&](const QuadFragment &q) {
                              covered += __builtin_popcount(q.coverage);
                          });
        EXPECT_LE(covered, 4);
    }
}

TEST(RasterEdgeTest, AdjacentTrianglesCoverPlaneWithoutCracks)
{
    // A screen-space quad split into two triangles: together they must
    // cover every interior pixel at least once (no cracks), and the
    // total double-covered count along the shared diagonal must stay
    // small relative to the area.
    Vertex a[3] = {
        {{-2, -2, -5}, {0, 0}},
        {{2, -2, -5}, {1, 0}},
        {{2, 2, -5}, {1, 1}},
    };
    Vertex b[3] = {
        {{-2, -2, -5}, {0, 0}},
        {{2, 2, -5}, {1, 1}},
        {{-2, 2, -5}, {0, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setup(a, out, false), 1);
    ASSERT_EQ(setup(b, out, false), 1);

    std::map<std::pair<int, int>, int> hits;
    for (const SetupTriangle &st : out) {
        rasterizeTriangle(st, st.min_x, st.min_y, st.max_x, st.max_y,
                          [&](const QuadFragment &q) {
                              for (int i = 0; i < 4; ++i) {
                                  if (q.coverage & (1u << i)) {
                                      ++hits[{q.x + (i & 1),
                                              q.y + (i >> 1)}];
                                  }
                              }
                          });
    }

    // Interior region well inside the quad: every pixel covered.
    int interior = 0, missing = 0, doubled = 0;
    for (int y = 20; y < 44; ++y) {
        for (int x = 20; x < 44; ++x) {
            ++interior;
            auto it = hits.find({x, y});
            if (it == hits.end())
                ++missing;
            else if (it->second > 1)
                ++doubled;
        }
    }
    EXPECT_EQ(missing, 0);
    // Without a strict fill convention the shared diagonal may double-
    // hit; it must stay a thin line, not an area.
    EXPECT_LT(doubled, interior / 8);
}

TEST(RasterEdgeTest, QuadWindowClampNeverEmitsOutside)
{
    Vertex tri[3] = {
        {{-3, -3, -4}, {0, 0}},
        {{3, -3, -4}, {1, 0}},
        {{0, 3, -4}, {0.5f, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setup(tri, out), 1);
    // Odd-aligned window: quads are even-aligned but coverage must stay
    // within the window.
    rasterizeTriangle(out[0], 17, 9, 33, 25, [](const QuadFragment &q) {
        for (int i = 0; i < 4; ++i) {
            if (q.coverage & (1u << i)) {
                int px = q.x + (i & 1);
                int py = q.y + (i >> 1);
                EXPECT_GE(px, 17);
                EXPECT_LE(px, 33);
                EXPECT_GE(py, 9);
                EXPECT_LE(py, 25);
            }
        }
    });
}

TEST(RasterEdgeTest, CoverageBitsMatchPixelPositions)
{
    // A half-plane edge through a quad: bits must correspond to the
    // documented (+0,+0)(+1,+0)(+0,+1)(+1,+1) layout.
    Vertex tri[3] = {
        {{-10, -10, -5}, {0, 0}},
        {{10, -10, -5}, {1, 0}},
        {{-10, 10, -5}, {0, 1}},
    };
    std::vector<SetupTriangle> out;
    ASSERT_EQ(setup(tri, out), 1);
    bool found_partial = false;
    rasterizeTriangle(out[0], out[0].min_x, out[0].min_y, out[0].max_x,
                      out[0].max_y, [&](const QuadFragment &q) {
                          unsigned c = q.coverage;
                          if (c != 0xF && c != 0)
                              found_partial = true;
                      });
    EXPECT_TRUE(found_partial); // The hypotenuse creates partial quads.
}

TEST(RasterEdgeTest, NearClipPreservesUvRange)
{
    // After clipping, interpolated uv at covered pixels stays within the
    // original attribute range.
    Vertex tri[3] = {
        {{-2, -1, -8}, {0, 0}},
        {{2, -1, -8}, {1, 0}},
        {{0, 1, 2}, {0.5f, 1}}, // Behind the camera.
    };
    std::vector<SetupTriangle> out;
    int n = setup(tri, out, false);
    ASSERT_GE(n, 1);
    for (const SetupTriangle &st : out) {
        rasterizeTriangle(st, st.min_x, st.min_y, st.max_x, st.max_y,
                          [&](const QuadFragment &q) {
                              for (int i = 0; i < 4; ++i) {
                                  if (!(q.coverage & (1u << i)))
                                      continue;
                                  EXPECT_GE(q.uv[i].x, -0.05f);
                                  EXPECT_LE(q.uv[i].x, 1.05f);
                                  EXPECT_GE(q.uv[i].y, -0.05f);
                                  EXPECT_LE(q.uv[i].y, 1.05f);
                              }
                          });
    }
}
