/**
 * @file
 * Determinism guarantee of the parallel execution engine: runTrace() with
 * N threads must produce bit-identical FrameStats, images and aggregates
 * to the 1-thread run, runSweep() must equal per-config runTrace(), and
 * the parallel SSIM path must match the serial one exactly.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "common/threadpool.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "sim/pipeline.hh"
#include "simd/dispatch.hh"

using namespace pargpu;

namespace
{

/**
 * Field-by-field FrameStats equality. @p compare_arena excludes the
 * arena.* byte counters: they are the one designed difference between
 * PARGPU_ARENA=1 and =0 runs (zero when off), while everything else —
 * cycles, images, traffic — must still match bit-for-bit.
 */
void
expectStatsEqual(const FrameStats &a, const FrameStats &b,
                 bool compare_arena = true)
{
#define PARGPU_EQ(field) EXPECT_EQ(a.field, b.field) << #field
    PARGPU_EQ(total_cycles);
    PARGPU_EQ(geometry_cycles);
    PARGPU_EQ(fragment_cycles);
    PARGPU_EQ(texture_filter_cycles);
    PARGPU_EQ(texture_mem_stall);
    PARGPU_EQ(shader_busy_cycles);
    PARGPU_EQ(triangles_in);
    PARGPU_EQ(triangles_setup);
    PARGPU_EQ(earlyz_tested);
    PARGPU_EQ(earlyz_killed);
    PARGPU_EQ(quads);
    PARGPU_EQ(pixels_shaded);
    PARGPU_EQ(trilinear_samples);
    PARGPU_EQ(texels);
    PARGPU_EQ(addr_ops);
    PARGPU_EQ(table_accesses);
    PARGPU_EQ(tex_lines);
    PARGPU_EQ(memo_lookups);
    PARGPU_EQ(memo_hits);
    PARGPU_EQ(simd_batches);
    PARGPU_EQ(raster_simd_quads);
    PARGPU_EQ(fb_simd_fills);
    if (compare_arena) {
        PARGPU_EQ(arena_frame_bytes);
        PARGPU_EQ(arena_high_water);
    }
    PARGPU_EQ(af_candidate_pixels);
    PARGPU_EQ(approx_stage1);
    PARGPU_EQ(approx_stage2);
    PARGPU_EQ(full_af);
    PARGPU_EQ(trivial_tf);
    PARGPU_EQ(af_input_samples);
    PARGPU_EQ(shared_samples);
    PARGPU_EQ(divergent_quads);
    PARGPU_EQ(af_quads);
    PARGPU_EQ(filter_policy);
    PARGPU_EQ(stf_samples);
    PARGPU_EQ(fas_quads);
    PARGPU_EQ(traffic_texture);
    PARGPU_EQ(traffic_colordepth);
    PARGPU_EQ(traffic_geometry);
    PARGPU_EQ(l1_hits);
    PARGPU_EQ(l1_misses);
    PARGPU_EQ(llc_hits);
    PARGPU_EQ(llc_misses);
    PARGPU_EQ(dram_reads);
    PARGPU_EQ(dram_row_hits);
#undef PARGPU_EQ
    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (std::size_t c = 0; c < a.clusters.size(); ++c) {
#define PARGPU_CEQ(field) \
    EXPECT_EQ(a.clusters[c].field, b.clusters[c].field) \
        << "cluster " << c << " " << #field
        PARGPU_CEQ(tiles);
        PARGPU_CEQ(quads);
        PARGPU_CEQ(pixels);
        PARGPU_CEQ(texels);
        PARGPU_CEQ(cycles);
        PARGPU_CEQ(filter_busy);
        PARGPU_CEQ(mem_stall);
#undef PARGPU_CEQ
    }
}

void
expectImagesEqual(const Image &a, const Image &b)
{
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    const std::vector<Color4f> &pa = a.pixels();
    const std::vector<Color4f> &pb = b.pixels();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        // Bitwise float equality on purpose: the parallel path must do
        // the exact same arithmetic.
        ASSERT_EQ(pa[i].r, pb[i].r) << "pixel " << i;
        ASSERT_EQ(pa[i].g, pb[i].g) << "pixel " << i;
        ASSERT_EQ(pa[i].b, pb[i].b) << "pixel " << i;
        ASSERT_EQ(pa[i].a, pb[i].a) << "pixel " << i;
    }
}

void
expectRunsEqual(const RunResult &a, const RunResult &b,
                bool compare_arena = true)
{
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f)
        expectStatsEqual(a.frames[f], b.frames[f], compare_arena);
    ASSERT_EQ(a.images.size(), b.images.size());
    for (std::size_t f = 0; f < a.images.size(); ++f)
        expectImagesEqual(a.images[f], b.images[f]);
    EXPECT_EQ(a.avg_cycles, b.avg_cycles);
    EXPECT_EQ(a.total_energy_nj, b.total_energy_nj);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
}

GameTrace
smallTrace()
{
    return buildGameTrace(GameId::HL2, 96, 80, 3);
}

} // namespace

TEST(Determinism, RunTraceSerialVsParallelBaseline)
{
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.threads = 1;
    RunConfig parallel_cfg;
    parallel_cfg.threads = 4;
    expectRunsEqual(runTrace(trace, serial_cfg),
                    runTrace(trace, parallel_cfg));
}

TEST(Determinism, RunTraceSerialVsParallelPatu)
{
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threshold = 0.4f;
    serial_cfg.threads = 1;
    RunConfig parallel_cfg = serial_cfg;
    parallel_cfg.threads = 4;
    expectRunsEqual(runTrace(trace, serial_cfg),
                    runTrace(trace, parallel_cfg));
}

TEST(Determinism, ThreadCountDoesNotMatter)
{
    GameTrace trace = smallTrace();
    RunConfig cfg;
    cfg.scenario = DesignScenario::Patu;
    cfg.keep_images = false;
    cfg.threads = 2;
    RunResult two = runTrace(trace, cfg);
    cfg.threads = 3;
    RunResult three = runTrace(trace, cfg);
    expectRunsEqual(two, three);
}

TEST(Determinism, RunSweepMatchesRunTrace)
{
    GameTrace trace = smallTrace();
    std::vector<RunConfig> configs(3);
    configs[0].scenario = DesignScenario::Baseline;
    configs[1].scenario = DesignScenario::Patu;
    configs[1].threshold = 0.4f;
    configs[2].scenario = DesignScenario::NoAF;

    std::vector<RunResult> sweep = runSweep(trace, configs, 4);
    ASSERT_EQ(sweep.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        RunConfig serial = configs[i];
        serial.threads = 1;
        expectRunsEqual(runTrace(trace, serial), sweep[i]);
    }
}

// --- Intra-frame tile parallelism ------------------------------------
// The tile-parallel fragment phase must be bit-identical to the serial
// one: same frames, same FrameStats (including the per-cluster shards),
// same aggregates — at every worker count, alone and composed with
// frame-level parallelism.

TEST(Determinism, TileParallelMatchesSerialPatu)
{
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threshold = 0.4f;
    serial_cfg.threads = 1;
    RunResult ref = runTrace(trace, serial_cfg);

    RunConfig tile_cfg = serial_cfg;
    tile_cfg.tile_parallel = true;
    for (unsigned workers : {1u, 3u, 8u}) {
        ThreadPool::setDefaultThreads(workers);
        expectRunsEqual(ref, runTrace(trace, tile_cfg));
    }
    ThreadPool::setDefaultThreads(0);
}

TEST(Determinism, TileParallelMatchesSerialBaseline)
{
    // Baseline 16xAF: the texel-bound extreme, every pixel through the
    // full AF path (maximum memory-system pressure on the commit pass).
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Baseline;
    serial_cfg.threads = 1;
    RunResult ref = runTrace(trace, serial_cfg);

    RunConfig tile_cfg = serial_cfg;
    tile_cfg.tile_parallel = true;
    for (unsigned workers : {1u, 3u, 8u}) {
        ThreadPool::setDefaultThreads(workers);
        expectRunsEqual(ref, runTrace(trace, tile_cfg));
    }
    ThreadPool::setDefaultThreads(0);
}

TEST(Determinism, FrameParallelTimesTileParallel)
{
    // Both levels on at once: frames partitioned across the pool, each
    // frame's tiles fanned out again (the nested submit runs inline on
    // the worker — one shared pool, no oversubscription).
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threshold = 0.4f;
    serial_cfg.threads = 1;
    RunResult ref = runTrace(trace, serial_cfg);

    RunConfig both_cfg = serial_cfg;
    both_cfg.tile_parallel = true;
    for (int threads : {2, 3, 8}) {
        both_cfg.threads = threads;
        ThreadPool::setDefaultThreads(8);
        expectRunsEqual(ref, runTrace(trace, both_cfg));
    }
    ThreadPool::setDefaultThreads(0);
}

TEST(Determinism, TileParallelOddClusterCount)
{
    // A cluster count that does not divide the tile count exercises the
    // tail of the static % clusters assignment.
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threads = 1;
    serial_cfg.clusters = 3;
    RunResult ref = runTrace(trace, serial_cfg);

    RunConfig tile_cfg = serial_cfg;
    tile_cfg.tile_parallel = true;
    ThreadPool::setDefaultThreads(3);
    expectRunsEqual(ref, runTrace(trace, tile_cfg));
    ThreadPool::setDefaultThreads(0);
}

TEST(Determinism, TileParallelRegistryIdentical)
{
    // "Every exported counter": the whole StatRegistry snapshot —
    // counters, scalars (hit rates, imbalance) and histograms — must
    // serialize identically for serial and tile-parallel runs.
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threshold = 0.4f;
    serial_cfg.threads = 1;
    serial_cfg.keep_images = false;
    RunConfig tile_cfg = serial_cfg;
    tile_cfg.tile_parallel = true;

    ThreadPool::setDefaultThreads(4);
    RunResult a = runTrace(trace, serial_cfg);
    RunResult b = runTrace(trace, tile_cfg);
    ThreadPool::setDefaultThreads(0);

    StatRegistry ra, rb;
    buildRunRegistry(a, ra);
    buildRunRegistry(b, rb);
    EXPECT_EQ(ra.snapshot().toJson().dump(1),
              rb.snapshot().toJson().dump(1));
}

TEST(Determinism, FilterPoliciesAcrossModes)
{
    // The stochastic policies draw noise only from (pixel, sample,
    // camera-hash) counters, so every execution mode must reproduce the
    // serial run bit-for-bit: thread counts, tile parallelism, and both
    // composed (docs/FILTERING.md, determinism strategy).
    GameTrace trace = smallTrace();
    for (FilterPolicyId policy :
         {FilterPolicyId::StfUniform, FilterPolicyId::StfBlue,
          FilterPolicyId::StfWeighted,
          FilterPolicyId::FilterAfterShading}) {
        SCOPED_TRACE(filterPolicyName(policy));
        RunConfig serial_cfg;
        serial_cfg.filter_policy = policy;
        serial_cfg.threads = 1;
        RunResult ref = runTrace(trace, serial_cfg);

        RunConfig frame_cfg = serial_cfg;
        for (int threads : {3, 8}) {
            frame_cfg.threads = threads;
            expectRunsEqual(ref, runTrace(trace, frame_cfg));
        }

        RunConfig tile_cfg = serial_cfg;
        tile_cfg.tile_parallel = true;
        for (unsigned workers : {1u, 3u, 8u}) {
            ThreadPool::setDefaultThreads(workers);
            expectRunsEqual(ref, runTrace(trace, tile_cfg));
        }

        RunConfig both_cfg = serial_cfg;
        both_cfg.tile_parallel = true;
        both_cfg.threads = 3;
        ThreadPool::setDefaultThreads(8);
        expectRunsEqual(ref, runTrace(trace, both_cfg));
        ThreadPool::setDefaultThreads(0);
    }
}

TEST(Determinism, ParallelSsimMatchesSerial)
{
    GameTrace trace = smallTrace();
    RunConfig base_cfg;
    RunConfig patu_cfg;
    patu_cfg.scenario = DesignScenario::Patu;
    RunResult base = runTrace(trace, base_cfg);
    RunResult patu = runTrace(trace, patu_cfg);

    ThreadPool::setDefaultThreads(1);
    std::vector<float> serial_map =
        ssimMap(base.images[0], patu.images[0]);
    double serial_mssim = patu.mssimAgainst(base.images);

    ThreadPool::setDefaultThreads(4);
    std::vector<float> parallel_map =
        ssimMap(base.images[0], patu.images[0]);
    double parallel_mssim = patu.mssimAgainst(base.images);
    ThreadPool::setDefaultThreads(0);

    ASSERT_EQ(serial_map.size(), parallel_map.size());
    for (std::size_t i = 0; i < serial_map.size(); ++i)
        ASSERT_EQ(serial_map[i], parallel_map[i]) << "map index " << i;
    EXPECT_EQ(serial_mssim, parallel_mssim);
}

// --- SIMD tier x execution mode x arena storage ----------------------
// The full hot-path matrix: every runnable kernel tier, serial and
// tile-parallel execution, and both scratch-storage modes must render
// the exact frames of the scalar / serial / arena-on reference.

namespace
{

/** Runnable dispatch tiers on this build and CPU (scalar always). */
std::vector<simd::SimdTier>
runnableTiers()
{
    std::vector<simd::SimdTier> tiers{simd::SimdTier::Scalar};
    const auto top = static_cast<int>(simd::detectTier());
    if (top >= static_cast<int>(simd::SimdTier::Sse))
        tiers.push_back(simd::SimdTier::Sse);
    if (top >= static_cast<int>(simd::SimdTier::Avx2))
        tiers.push_back(simd::SimdTier::Avx2);
    return tiers;
}

} // namespace

TEST(Determinism, SimdTierTimesExecutionMode)
{
    GameTrace trace = smallTrace();
    RunConfig serial_cfg;
    serial_cfg.scenario = DesignScenario::Patu;
    serial_cfg.threshold = 0.4f;
    serial_cfg.threads = 1;

    const simd::SimdTier saved = simd::activeTier();
    simd::setActiveTier(simd::SimdTier::Scalar);
    RunResult ref = runTrace(trace, serial_cfg);

    for (simd::SimdTier tier : runnableTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        simd::setActiveTier(tier);

        expectRunsEqual(ref, runTrace(trace, serial_cfg));

        RunConfig tile_cfg = serial_cfg;
        tile_cfg.tile_parallel = true;
        ThreadPool::setDefaultThreads(3);
        expectRunsEqual(ref, runTrace(trace, tile_cfg));
        ThreadPool::setDefaultThreads(0);

        RunConfig frame_cfg = serial_cfg;
        frame_cfg.threads = 3;
        expectRunsEqual(ref, runTrace(trace, frame_cfg));
    }
    simd::setActiveTier(saved);
}

TEST(Determinism, ArenaScratchOffMatchesOn)
{
    GameTrace trace = smallTrace();
    RunConfig cfg;
    cfg.scenario = DesignScenario::Patu;
    cfg.threshold = 0.4f;
    cfg.threads = 1;

    setArenaScratchForTesting(1);
    RunResult on = runTrace(trace, cfg);
    setArenaScratchForTesting(0);
    RunResult off = runTrace(trace, cfg);

    // Everything except the arena.* byte counters is bit-identical;
    // with the arena off those counters must read exactly zero.
    expectRunsEqual(on, off, /*compare_arena=*/false);
    for (const FrameStats &fs : on.frames) {
        EXPECT_GT(fs.arena_frame_bytes, 0u);
        EXPECT_GT(fs.arena_high_water, 0u);
    }
    for (const FrameStats &fs : off.frames) {
        EXPECT_EQ(fs.arena_frame_bytes, 0u);
        EXPECT_EQ(fs.arena_high_water, 0u);
    }

    // The heap path must also survive the tile-parallel fragment phase.
    RunConfig tile_cfg = cfg;
    tile_cfg.tile_parallel = true;
    ThreadPool::setDefaultThreads(3);
    expectRunsEqual(on, runTrace(trace, tile_cfg),
                    /*compare_arena=*/false);
    ThreadPool::setDefaultThreads(0);
    setArenaScratchForTesting(-1);
}

TEST(Determinism, ArenaTimesTierMatrix)
{
    // The diagonal stress: non-default tier and non-default storage at
    // once, on top of tile parallelism.
    GameTrace trace = smallTrace();
    RunConfig cfg;
    cfg.threads = 1;

    const simd::SimdTier saved = simd::activeTier();
    simd::setActiveTier(simd::SimdTier::Scalar);
    setArenaScratchForTesting(1);
    RunResult ref = runTrace(trace, cfg);

    RunConfig tile_cfg = cfg;
    tile_cfg.tile_parallel = true;
    for (simd::SimdTier tier : runnableTiers()) {
        SCOPED_TRACE(simd::tierName(tier));
        simd::setActiveTier(tier);
        setArenaScratchForTesting(0);
        ThreadPool::setDefaultThreads(3);
        expectRunsEqual(ref, runTrace(trace, tile_cfg),
                        /*compare_arena=*/false);
        ThreadPool::setDefaultThreads(0);
        setArenaScratchForTesting(1);
        expectRunsEqual(ref, runTrace(trace, cfg));
    }
    setArenaScratchForTesting(-1);
    simd::setActiveTier(saved);
}
