/**
 * @file
 * Unit tests for texture maps and texel addressing.
 */

#include <gtest/gtest.h>

#include <set>

#include "texture/texture.hh"

using namespace pargpu;

namespace
{

std::vector<RGBA8>
ramp(int w, int h)
{
    std::vector<RGBA8> t;
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            t.push_back({static_cast<std::uint8_t>(x * 8),
                         static_cast<std::uint8_t>(y * 8), 0, 255});
    return t;
}

} // namespace

TEST(TextureMapTest, SizeCoversAllLevels)
{
    TextureMap tex(8, 8, ramp(8, 8));
    // 8x8 + 4x4 + 2x2 + 1x1 texels, 4 bytes each.
    EXPECT_EQ(tex.sizeBytes(), (64u + 16 + 4 + 1) * 4);
    EXPECT_EQ(tex.numLevels(), 4);
}

TEST(TextureMapTest, WrapRepeatWrapsNegativeAndOverflow)
{
    EXPECT_EQ(TextureMap::wrapCoord(-1, 8, WrapMode::Repeat), 7);
    EXPECT_EQ(TextureMap::wrapCoord(8, 8, WrapMode::Repeat), 0);
    EXPECT_EQ(TextureMap::wrapCoord(17, 8, WrapMode::Repeat), 1);
    EXPECT_EQ(TextureMap::wrapCoord(-9, 8, WrapMode::Repeat), 7);
}

TEST(TextureMapTest, WrapClampClampsToEdges)
{
    EXPECT_EQ(TextureMap::wrapCoord(-5, 8, WrapMode::ClampToEdge), 0);
    EXPECT_EQ(TextureMap::wrapCoord(3, 8, WrapMode::ClampToEdge), 3);
    EXPECT_EQ(TextureMap::wrapCoord(12, 8, WrapMode::ClampToEdge), 7);
}

TEST(TextureMapTest, AddressesAreUniquePerTexelWithinLevel)
{
    TextureMap tex(16, 16, ramp(16, 16));
    std::set<Addr> addrs;
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            addrs.insert(tex.texelAddr(0, x, y));
    EXPECT_EQ(addrs.size(), 256u);
}

TEST(TextureMapTest, LevelsOccupyDisjointAddressRanges)
{
    TextureMap tex(8, 8, ramp(8, 8));
    std::set<Addr> addrs;
    for (int l = 0; l < tex.numLevels(); ++l) {
        const MipLevel &lv = tex.level(l);
        for (int y = 0; y < lv.height; ++y)
            for (int x = 0; x < lv.width; ++x)
                addrs.insert(tex.texelAddr(l, x, y));
    }
    EXPECT_EQ(addrs.size(), 64u + 16 + 4 + 1);
}

TEST(TextureMapTest, BaseAddressOffsetsAllTexels)
{
    TextureMap tex(4, 4, ramp(4, 4));
    Addr before = tex.texelAddr(0, 2, 2);
    tex.setBaseAddr(0x1000);
    EXPECT_EQ(tex.texelAddr(0, 2, 2), before + 0x1000);
}

TEST(TextureMapTest, WrappedCoordsAliasSameAddress)
{
    TextureMap tex(8, 8, ramp(8, 8), WrapMode::Repeat);
    EXPECT_EQ(tex.texelAddr(0, -1, 3), tex.texelAddr(0, 7, 3));
    EXPECT_EQ(tex.texelAddr(0, 8, 0), tex.texelAddr(0, 0, 0));
}

TEST(TextureMapTest, TiledLayoutKeepsTileInOneBlock)
{
    TextureMap tex(16, 16, ramp(16, 16), WrapMode::Repeat,
                   TexelLayout::Tiled4x4);
    // All 16 texels of the 4x4 tile at origin must land within one
    // 64-byte block.
    Addr lo = ~Addr{0}, hi = 0;
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            Addr a = tex.texelAddr(0, x, y);
            lo = std::min(lo, a);
            hi = std::max(hi, a);
        }
    }
    EXPECT_EQ(hi - lo, 60u); // 16 texels * 4 B: contiguous.
}

TEST(TextureMapTest, LinearLayoutIsRowMajor)
{
    TextureMap tex(8, 8, ramp(8, 8), WrapMode::Repeat,
                   TexelLayout::Linear);
    EXPECT_EQ(tex.texelAddr(0, 1, 0) - tex.texelAddr(0, 0, 0), 4u);
    EXPECT_EQ(tex.texelAddr(0, 0, 1) - tex.texelAddr(0, 0, 0), 32u);
}

TEST(TextureMapTest, FetchTexelAppliesWrap)
{
    TextureMap tex(4, 4, ramp(4, 4), WrapMode::Repeat);
    Color4f direct = tex.fetchTexel(0, 1, 2);
    Color4f wrapped = tex.fetchTexel(0, 5, -2);
    EXPECT_FLOAT_EQ(direct.r, wrapped.r);
    EXPECT_FLOAT_EQ(direct.g, wrapped.g);
}
