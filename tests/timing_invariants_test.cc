/**
 * @file
 * Timing-model invariant tests: the structural relations every experiment
 * relies on, checked on a small controlled workload so they run fast.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"

using namespace pargpu;

namespace
{

const GameTrace &
trace()
{
    static GameTrace t = buildGameTrace(GameId::Grid, 320, 256, 1);
    return t;
}

double
cyclesAt(DesignScenario s, float threshold)
{
    RunConfig cfg;
    cfg.scenario = s;
    cfg.threshold = threshold;
    cfg.keep_images = false;
    return runTrace(trace(), cfg).avg_cycles;
}

FrameStats
statsAt(DesignScenario s, float threshold = 0.4f)
{
    RunConfig cfg;
    cfg.scenario = s;
    cfg.threshold = threshold;
    cfg.keep_images = false;
    return runTrace(trace(), cfg).frames[0];
}

} // namespace

TEST(TimingInvariantsTest, ScenarioOrderingOnCycles)
{
    double base = cyclesAt(DesignScenario::Baseline, 0.4f);
    double n_only = cyclesAt(DesignScenario::AfSsimN, 0.4f);
    double n_txds = cyclesAt(DesignScenario::AfSsimNTxds, 0.4f);
    double noaf = cyclesAt(DesignScenario::NoAF, 0.4f);
    // Each added mechanism may only remove work.
    EXPECT_LE(n_only, base * 1.001);
    EXPECT_LE(n_txds, n_only * 1.001);
    EXPECT_LE(noaf, n_txds * 1.001);
}

TEST(TimingInvariantsTest, ThresholdMonotoneInCycles)
{
    // More aggressive thresholds can only reduce frame time (modulo the
    // small stage-2 addressing overhead; allow 2 % slack).
    double prev = 0.0;
    for (float t : {0.0f, 0.2f, 0.4f, 0.6f, 0.8f, 1.0f}) {
        double c = cyclesAt(DesignScenario::Patu, t);
        if (prev > 0.0) {
            EXPECT_GE(c, prev * 0.98) << "threshold " << t;
        }
        prev = c;
    }
}

TEST(TimingInvariantsTest, ThresholdEndpointsMatchForcedScenarios)
{
    // Threshold 0 approximates everything (work == NoAF modulo the
    // prediction flow's bookkeeping); threshold 1 keeps all AF samples.
    FrameStats patu0 = statsAt(DesignScenario::Patu, 0.0f);
    FrameStats noaf = statsAt(DesignScenario::NoAF);
    EXPECT_EQ(patu0.trilinear_samples, noaf.trilinear_samples);

    FrameStats patu1 = statsAt(DesignScenario::Patu, 1.0f);
    FrameStats base = statsAt(DesignScenario::Baseline);
    EXPECT_EQ(patu1.trilinear_samples, base.trilinear_samples);
}

TEST(TimingInvariantsTest, FilterCyclesAreWithinFragmentPhaseScale)
{
    FrameStats f = statsAt(DesignScenario::Baseline);
    // Texture busy time is distributed over 4 TUs; the fragment phase is
    // the max cluster, so per-cluster texture time must not exceed it.
    EXPECT_LE(f.texture_filter_cycles / 4, f.fragment_cycles);
    EXPECT_GT(f.texture_filter_cycles, 0u);
}

TEST(TimingInvariantsTest, TotalIsGeometryPlusFragment)
{
    FrameStats f = statsAt(DesignScenario::Baseline);
    EXPECT_EQ(f.total_cycles, f.geometry_cycles + f.fragment_cycles);
}

TEST(TimingInvariantsTest, DecisionCountsPartitionAfCandidates)
{
    FrameStats f = statsAt(DesignScenario::Patu);
    // Every anisotropic-path pixel lands in exactly one decision bucket.
    EXPECT_EQ(f.trivial_tf + f.approx_stage1 + f.approx_stage2 +
                  f.full_af,
              f.pixels_shaded);
}

TEST(TimingInvariantsTest, TexelsAreEightPerTrilinearSample)
{
    FrameStats f = statsAt(DesignScenario::Baseline);
    EXPECT_EQ(f.texels, f.trilinear_samples * 8);
}

TEST(TimingInvariantsTest, NoAfFetchesExactlyOneSamplePerPixel)
{
    FrameStats f = statsAt(DesignScenario::NoAF);
    EXPECT_EQ(f.trilinear_samples, f.pixels_shaded);
}

TEST(TimingInvariantsTest, BaselineSamplesMatchAnisotropyDegrees)
{
    FrameStats f = statsAt(DesignScenario::Baseline);
    // Baseline AF fetches >= 1 sample per pixel, more where anisotropic.
    EXPECT_GE(f.trilinear_samples, f.pixels_shaded);
    EXPECT_GT(f.af_candidate_pixels, 0u);
}

TEST(TimingInvariantsTest, MemStallNeverExceedsFilterBusy)
{
    FrameStats f = statsAt(DesignScenario::Baseline);
    EXPECT_LE(f.texture_mem_stall, f.texture_filter_cycles);
}

TEST(TimingInvariantsTest, CacheAccountingConsistent)
{
    FrameStats f = statsAt(DesignScenario::Baseline);
    // Every LLC access originates from an L1 texture miss or a non-
    // texture read; with this trace (textures dominate) the LLC access
    // count can never exceed L1 misses plus geometry reads.
    std::uint64_t geometry_reads = f.traffic_geometry / 64 + 64;
    EXPECT_LE(f.llc_hits + f.llc_misses, f.l1_misses + geometry_reads);
    // DRAM reads == LLC misses.
    EXPECT_EQ(f.dram_reads, f.llc_misses);
}

TEST(TimingInvariantsTest, TrafficMatchesDramLineReadsPlusWrites)
{
    FrameStats f = statsAt(DesignScenario::Baseline);
    Bytes read_bytes = static_cast<Bytes>(f.dram_reads) * 64;
    EXPECT_LE(read_bytes, f.totalTraffic());
}
