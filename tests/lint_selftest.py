#!/usr/bin/env python3
"""Selftest for the project's static-analysis tooling.

Proves tools/pargpu_analyze.py by construction against the fixtures in
tests/fixtures/analysis/:

  1. over fixtures/analysis/bad/ every rule fires exactly once, on its
     own fixture file, and no rule over- or cross-fires;
  2. over fixtures/analysis/clean/ the analyzer is silent;
  3. over fixtures/analysis/suppressed/ an inline
     "pargpu-analyze: allow(...)" grant silences a real violation;
  4. a stale file-level allowlist entry is fatal — for the analyzer and
     for tools/pargpu_lint.py alike (the anti-rot contract).

Run as a CTest (target lint_selftest) and by scripts/check.sh:

    python3 tests/lint_selftest.py --root <repo-root>
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# Rule -> the fixture file (under bad/src/sim/) that must trigger it.
EXPECTED = {
    "unordered-iter": "unordered_iter.cc",
    "wall-clock": "wall_clock.cc",
    "random-device": "random_device.cc",
    "thread-id": "thread_id.cc",
    "addr-hash": "addr_hash.cc",
    "fp-unsafe": "fp_unsafe.cc",
    "global-state": "global_state.cc",
    "cluster-escape": "cluster_escape.cc",
}

RE_FINDING = re.compile(r"^(\S+?):(\d+): \[([a-z-]+)\]")

failures = []


def check(cond, what):
    status = "ok" if cond else "FAIL"
    print(f"selftest: {status}: {what}")
    if not cond:
        failures.append(what)


def run_analyze(root, fixture_root, extra=()):
    cmd = [sys.executable, os.path.join(root, "tools", "pargpu_analyze.py"),
           "--root", fixture_root, "--frontend", "text", *extra]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = RE_FINDING.match(line)
        if m:
            findings.append((m.group(1).replace(os.sep, "/"), m.group(3)))
    return proc, findings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tests/)")
    args = ap.parse_args()
    root = os.path.abspath(args.root)
    fixtures = os.path.join(root, "tests", "fixtures", "analysis")

    import importlib.util
    spec = importlib.util.spec_from_file_location(
        "pargpu_analyze", os.path.join(root, "tools", "pargpu_analyze.py"))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    check(set(EXPECTED) == set(mod.RULES),
          "fixture table covers exactly the analyzer's RULES")

    # 1. Every rule fires exactly once, on its own file, nothing else.
    proc, findings = run_analyze(root, os.path.join(fixtures, "bad"))
    check(proc.returncode == 1, "bad fixtures: exit status 1")
    want = {(f"src/sim/{fname}", rule) for rule, fname in EXPECTED.items()}
    got = set(findings)
    for miss in sorted(want - got):
        print(f"selftest:   missing: {miss}")
    for extra in sorted(got - want):
        print(f"selftest:   unexpected: {extra}")
    check(got == want and len(findings) == len(want),
          "bad fixtures: each rule fires exactly once on its own file")

    # 2. Silence on clean code.
    proc, findings = run_analyze(root, os.path.join(fixtures, "clean"))
    check(proc.returncode == 0 and not findings,
          "clean fixtures: analyzer is silent")

    # 3. Inline suppression is honored.
    proc, findings = run_analyze(root, os.path.join(fixtures, "suppressed"))
    check(proc.returncode == 0 and not findings,
          "suppressed fixture: inline allow() silences the finding")

    # 4a. A stale analyzer allowlist entry is fatal.
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write("wall-clock src/sim/clean.cc\n")
        stale = f.name
    try:
        proc, _ = run_analyze(root, os.path.join(fixtures, "clean"),
                              extra=("--allowlist", stale))
        check(proc.returncode == 1 and
              "unused allowlist entry" in proc.stdout,
              "analyzer: stale allowlist entry is fatal")
    finally:
        os.unlink(stale)

    # 4b. Same contract in pargpu_lint.py, against the real tree (the
    # rand rule is enforced everywhere, so this entry cannot be in use).
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write("rand src/sim/pipeline.cc\n")
        stale = f.name
    try:
        proc = subprocess.run(
            [sys.executable, os.path.join(root, "tools", "pargpu_lint.py"),
             "--root", root, "--allowlist", stale, "--no-spot-builds"],
            capture_output=True, text=True)
        check(proc.returncode == 1 and
              "unused allowlist entry" in proc.stdout,
              "lint: stale allowlist entry is fatal")
    finally:
        os.unlink(stale)

    if failures:
        print(f"selftest: {len(failures)} check(s) failed")
        return 1
    print("selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
