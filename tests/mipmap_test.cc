/**
 * @file
 * Unit tests for mipmap pyramid construction.
 */

#include <gtest/gtest.h>

#include "texture/mipmap.hh"

using namespace pargpu;

namespace
{

std::vector<RGBA8>
solid(int w, int h, RGBA8 c)
{
    return std::vector<RGBA8>(static_cast<std::size_t>(w) * h, c);
}

} // namespace

TEST(MipmapTest, PowerOfTwoPredicate)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(-4));
    EXPECT_FALSE(isPowerOfTwo(100));
}

TEST(MipmapTest, LevelCountForSquareTexture)
{
    auto levels = buildMipPyramid(16, 16, solid(16, 16, {10, 20, 30, 255}));
    // 16 -> 8 -> 4 -> 2 -> 1: five levels.
    ASSERT_EQ(levels.size(), 5u);
    EXPECT_EQ(levels[0].width, 16);
    EXPECT_EQ(levels[4].width, 1);
    EXPECT_EQ(levels[4].height, 1);
}

TEST(MipmapTest, NonSquarePyramidCollapsesToOneByOne)
{
    auto levels = buildMipPyramid(8, 2, solid(8, 2, {0, 0, 0, 255}));
    // 8x2 -> 4x1 -> 2x1 -> 1x1.
    ASSERT_EQ(levels.size(), 4u);
    EXPECT_EQ(levels[1].width, 4);
    EXPECT_EQ(levels[1].height, 1);
    EXPECT_EQ(levels.back().width, 1);
    EXPECT_EQ(levels.back().height, 1);
}

TEST(MipmapTest, SolidColorIsPreservedAcrossLevels)
{
    RGBA8 c{100, 150, 200, 255};
    auto levels = buildMipPyramid(8, 8, solid(8, 8, c));
    for (const MipLevel &lv : levels) {
        for (const RGBA8 &t : lv.texels) {
            EXPECT_EQ(t.r, c.r);
            EXPECT_EQ(t.g, c.g);
            EXPECT_EQ(t.b, c.b);
        }
    }
}

TEST(MipmapTest, BoxFilterAveragesQuads)
{
    // 2x2 texture with values 0, 80, 160, 240 averages to 120.
    std::vector<RGBA8> base = {
        {0, 0, 0, 255}, {80, 80, 80, 255},
        {160, 160, 160, 255}, {240, 240, 240, 255},
    };
    auto levels = buildMipPyramid(2, 2, base);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[1].at(0, 0).r, 120);
}

TEST(MipmapTest, CheckerboardAveragesToGray)
{
    std::vector<RGBA8> base;
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            base.push_back(((x + y) & 1) ? RGBA8{255, 255, 255, 255}
                                         : RGBA8{0, 0, 0, 255});
    auto levels = buildMipPyramid(4, 4, base);
    // Every 2x2 quad holds two black and two white texels.
    for (const RGBA8 &t : levels[1].texels)
        EXPECT_NEAR(t.r, 128, 1);
}

TEST(MipmapDeathTest, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT(buildMipPyramid(6, 4, solid(6, 4, {})),
                testing::ExitedWithCode(1), "powers of two");
}

TEST(MipmapDeathTest, RejectsWrongTexelCount)
{
    EXPECT_EXIT(buildMipPyramid(4, 4, solid(2, 2, {})),
                testing::ExitedWithCode(1), "does not match");
}
