/**
 * @file
 * Layout-equivalence guarantee of the texel hot path: host-side texel
 * storage (Linear vs Morton) is a pure performance knob. Rendered frames
 * must be bit-identical and every simulated counter (texels, cache hits,
 * DRAM traffic, cycles) identical across storage modes, because storage
 * only reorders the host array — simulated texel addresses come from
 * TexelLayout, which is part of the modeled machine.
 */

#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "texture/texture.hh"

using namespace pargpu;

namespace
{

std::vector<RGBA8>
ramp(int w, int h)
{
    std::vector<RGBA8> t;
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            t.push_back({static_cast<std::uint8_t>((x * 13 + y) & 0xff),
                         static_cast<std::uint8_t>((y * 7 + x) & 0xff),
                         static_cast<std::uint8_t>((x ^ y) & 0xff), 255});
    return t;
}

/** RAII guard: set the process-wide storage default, restore on exit. */
class StorageGuard
{
  public:
    explicit StorageGuard(TexelStorage s)
        : saved_(TextureMap::defaultStorage())
    {
        TextureMap::setDefaultStorage(s);
    }
    ~StorageGuard() { TextureMap::setDefaultStorage(saved_); }

  private:
    TexelStorage saved_;
};

bool
bitIdentical(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        return false;
    return std::memcmp(a.pixels().data(), b.pixels().data(),
                       a.pixels().size() * sizeof(Color4f)) == 0;
}

} // namespace

TEST(MortonLayoutTest, IndexIsAPermutation)
{
    MipLevel lv;
    lv.width = 8;
    lv.height = 8;
    lv.storage = TexelStorage::Morton;
    std::set<std::size_t> seen;
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            seen.insert(lv.index(x, y));
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 63u);
}

TEST(MortonLayoutTest, InTileOrderInterleavesBits)
{
    // Z-order within a 4x4 tile: index = x0 y0 x1 y1 bit-interleaved.
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) {
            int expect = (x & 1) | ((y & 1) << 1) | ((x & 2) << 1) |
                ((y & 2) << 2);
            EXPECT_EQ(kMortonInTile4x4[(y << 2) | x], expect)
                << "x=" << x << " y=" << y;
        }
}

TEST(MortonLayoutTest, SubTileLevelsFallBackToRowMajor)
{
    MipLevel lv;
    lv.width = 2;
    lv.height = 2;
    lv.storage = TexelStorage::Morton;
    EXPECT_EQ(lv.index(0, 0), 0u);
    EXPECT_EQ(lv.index(1, 0), 1u);
    EXPECT_EQ(lv.index(0, 1), 2u);
    EXPECT_EQ(lv.index(1, 1), 3u);
}

TEST(MortonLayoutTest, TileContiguousInHostMemory)
{
    // All 16 texels of a 4x4 tile land in one contiguous 16-entry span.
    MipLevel lv;
    lv.width = 16;
    lv.height = 16;
    lv.storage = TexelStorage::Morton;
    for (int ty = 0; ty < 4; ++ty)
        for (int tx = 0; tx < 4; ++tx) {
            std::size_t lo = lv.index(tx * 4, ty * 4);
            for (int y = 0; y < 4; ++y)
                for (int x = 0; x < 4; ++x) {
                    std::size_t i = lv.index(tx * 4 + x, ty * 4 + y);
                    EXPECT_GE(i, lo);
                    EXPECT_LT(i, lo + 16);
                }
        }
}

TEST(LayoutEquivalenceTest, FetchesMatchAcrossStorageModes)
{
    const int w = 32, h = 16;
    TextureMap lin(w, h, ramp(w, h), WrapMode::Repeat, TexelLayout::Tiled4x4,
                   StorageFormat::RGBA8, TexelStorage::Linear);
    TextureMap mor(w, h, ramp(w, h), WrapMode::Repeat, TexelLayout::Tiled4x4,
                   StorageFormat::RGBA8, TexelStorage::Morton);
    ASSERT_EQ(lin.numLevels(), mor.numLevels());
    for (int l = 0; l < lin.numLevels(); ++l) {
        const int lw = lin.level(l).width, lh = lin.level(l).height;
        // Out-of-range coordinates included: wrapping must agree too.
        for (int y = -2; y < lh + 2; ++y)
            for (int x = -2; x < lw + 2; ++x) {
                EXPECT_EQ(lin.texelAddr(l, x, y), mor.texelAddr(l, x, y));
                Color4f a = lin.fetchTexel(l, x, y);
                Color4f b = mor.fetchTexel(l, x, y);
                EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0);
            }
    }
}

TEST(LayoutEquivalenceTest, FootprintMatchesScalarFetches)
{
    const int w = 16, h = 16;
    TextureMap tex(w, h, ramp(w, h), WrapMode::Repeat, TexelLayout::Tiled4x4,
                   StorageFormat::RGBA8, TexelStorage::Morton);
    for (int l = 0; l < tex.numLevels(); ++l) {
        const int lw = tex.level(l).width, lh = tex.level(l).height;
        for (int y0 = -1; y0 < lh; ++y0)
            for (int x0 = -1; x0 < lw; ++x0) {
                Color4f color[4];
                Addr addr[4];
                tex.fetchFootprint(l, x0, y0, color, addr);
                const int dx[4] = {0, 1, 0, 1};
                const int dy[4] = {0, 0, 1, 1};
                for (int i = 0; i < 4; ++i) {
                    Color4f want = tex.fetchTexel(l, x0 + dx[i], y0 + dy[i]);
                    EXPECT_EQ(addr[i], tex.texelAddr(l, x0 + dx[i],
                                                     y0 + dy[i]));
                    EXPECT_EQ(std::memcmp(&color[i], &want, sizeof want), 0);
                }
            }
    }
}

TEST(LayoutEquivalenceTest, RenderedFramesBitIdenticalAcrossStorage)
{
    RunConfig cfg;
    cfg.scenario = DesignScenario::Patu; // Exercises AF + decision path.
    cfg.keep_images = true;
    cfg.threads = 1;

    std::vector<Image> lin_images, mor_images;
    std::vector<FrameStats> lin_stats, mor_stats;
    {
        StorageGuard g(TexelStorage::Linear);
        GameTrace trace = buildGameTrace(GameId::Wolf, 128, 96, 2);
        RunResult r = runTrace(trace, cfg);
        lin_images = std::move(r.images);
        lin_stats = std::move(r.frames);
    }
    {
        StorageGuard g(TexelStorage::Morton);
        GameTrace trace = buildGameTrace(GameId::Wolf, 128, 96, 2);
        RunResult r = runTrace(trace, cfg);
        mor_images = std::move(r.images);
        mor_stats = std::move(r.frames);
    }

    ASSERT_EQ(lin_images.size(), mor_images.size());
    for (std::size_t f = 0; f < lin_images.size(); ++f)
        EXPECT_TRUE(bitIdentical(lin_images[f], mor_images[f]))
            << "frame " << f;

    ASSERT_EQ(lin_stats.size(), mor_stats.size());
    for (std::size_t f = 0; f < lin_stats.size(); ++f) {
        const FrameStats &a = lin_stats[f];
        const FrameStats &b = mor_stats[f];
#define PARGPU_EQ(field) EXPECT_EQ(a.field, b.field) << #field " frame " << f
        PARGPU_EQ(total_cycles);
        PARGPU_EQ(texels);
        PARGPU_EQ(trilinear_samples);
        PARGPU_EQ(tex_lines);
        PARGPU_EQ(memo_lookups);
        PARGPU_EQ(memo_hits);
        PARGPU_EQ(l1_hits);
        PARGPU_EQ(l1_misses);
        PARGPU_EQ(llc_hits);
        PARGPU_EQ(llc_misses);
        PARGPU_EQ(dram_reads);
        PARGPU_EQ(traffic_texture);
        PARGPU_EQ(approx_stage1);
        PARGPU_EQ(approx_stage2);
        PARGPU_EQ(full_af);
        PARGPU_EQ(table_accesses);
#undef PARGPU_EQ
    }
}
