/**
 * @file
 * Unit tests for procedural texture generation.
 */

#include <gtest/gtest.h>

#include "texture/procedural.hh"

using namespace pargpu;

namespace
{

double
meanLuma(const std::vector<RGBA8> &texels)
{
    double acc = 0.0;
    for (const RGBA8 &t : texels)
        acc += unpackRGBA8(t).luma();
    return acc / static_cast<double>(texels.size());
}

double
lumaVariance(const std::vector<RGBA8> &texels)
{
    double mean = meanLuma(texels);
    double acc = 0.0;
    for (const RGBA8 &t : texels) {
        double d = unpackRGBA8(t).luma() - mean;
        acc += d * d;
    }
    return acc / static_cast<double>(texels.size());
}

} // namespace

class ProceduralKindTest : public testing::TestWithParam<TextureKind>
{
};

TEST_P(ProceduralKindTest, ProducesCorrectTexelCount)
{
    auto texels = generateTexture(GetParam(), 64, 5);
    EXPECT_EQ(texels.size(), 64u * 64u);
}

TEST_P(ProceduralKindTest, DeterministicForSameSeed)
{
    auto a = generateTexture(GetParam(), 32, 99);
    auto b = generateTexture(GetParam(), 32, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].r, b[i].r);
        EXPECT_EQ(a[i].g, b[i].g);
        EXPECT_EQ(a[i].b, b[i].b);
    }
}

TEST_P(ProceduralKindTest, SeedChangesContent)
{
    auto a = generateTexture(GetParam(), 32, 1);
    auto b = generateTexture(GetParam(), 32, 2);
    int diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += a[i].r != b[i].r || a[i].g != b[i].g;
    EXPECT_GT(diff, 0);
}

TEST_P(ProceduralKindTest, HasSpatialDetail)
{
    // Every texture family must carry high-frequency content; a flat
    // texture would make AF vs TF differences invisible.
    auto texels = generateTexture(GetParam(), 64, 3);
    EXPECT_GT(lumaVariance(texels), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ProceduralKindTest,
    testing::Values(TextureKind::Checker, TextureKind::Bricks,
                    TextureKind::Noise, TextureKind::Grass,
                    TextureKind::Marble, TextureKind::Wood,
                    TextureKind::Stripes, TextureKind::Panels));

TEST(FractalNoiseTest, StaysInUnitRange)
{
    for (int i = 0; i < 1000; ++i) {
        float u = (i % 37) / 37.0f;
        float v = (i % 11) / 11.0f;
        float n = fractalNoise(u, v, 5, 42);
        EXPECT_GE(n, 0.0f);
        EXPECT_LE(n, 1.0f);
    }
}

TEST(FractalNoiseTest, MoreOctavesAddDetail)
{
    // Sampling a fine grid, the 5-octave field should differ from the
    // 1-octave field at many points.
    int diffs = 0;
    for (int i = 0; i < 64; ++i) {
        float u = i / 64.0f;
        float a = fractalNoise(u, u, 1, 7);
        float b = fractalNoise(u, u, 5, 7);
        diffs += std::abs(a - b) > 1e-3f;
    }
    EXPECT_GT(diffs, 32);
}

TEST(ProceduralTest, CheckerIsHighContrast)
{
    auto texels = generateTexture(TextureKind::Checker, 64, 1);
    EXPECT_GT(lumaVariance(texels), 0.1);
}

TEST(ProceduralTest, PanelsAreDarkerThanChecker)
{
    // Doom3-style panels read darker than a checkerboard; this relative
    // ordering drives the per-game perception differences.
    auto panels = generateTexture(TextureKind::Panels, 64, 1);
    auto checker = generateTexture(TextureKind::Checker, 64, 1);
    EXPECT_LT(meanLuma(panels), meanLuma(checker));
}
