/**
 * @file
 * Unit tests for the color/depth framebuffer.
 */

#include <gtest/gtest.h>

#include "sim/framebuffer.hh"

using namespace pargpu;

TEST(FramebufferTest, ClearSetsColorEverywhere)
{
    Framebuffer fb(8, 6);
    fb.clear({0.1f, 0.2f, 0.3f, 1.0f});
    for (int y = 0; y < 6; ++y) {
        for (int x = 0; x < 8; ++x) {
            EXPECT_FLOAT_EQ(fb.colorAt(x, y).r, 0.1f);
            EXPECT_FLOAT_EQ(fb.colorAt(x, y).b, 0.3f);
        }
    }
}

TEST(FramebufferTest, DepthTestPassesNearerFragment)
{
    Framebuffer fb(4, 4);
    fb.clear({0, 0, 0, 1});
    EXPECT_TRUE(fb.depthTest(1, 1, 0.5f));
    EXPECT_TRUE(fb.depthTest(1, 1, 0.3f));  // Nearer: passes.
    EXPECT_FALSE(fb.depthTest(1, 1, 0.4f)); // Farther: fails.
    EXPECT_FLOAT_EQ(fb.depthAt(1, 1), 0.3f);
}

TEST(FramebufferTest, DepthTestIndependentPerPixel)
{
    Framebuffer fb(4, 4);
    fb.clear({0, 0, 0, 1});
    EXPECT_TRUE(fb.depthTest(0, 0, 0.1f));
    EXPECT_TRUE(fb.depthTest(3, 3, 0.9f));
    EXPECT_FLOAT_EQ(fb.depthAt(0, 0), 0.1f);
    EXPECT_FLOAT_EQ(fb.depthAt(3, 3), 0.9f);
}

TEST(FramebufferTest, ClearResetsDepth)
{
    Framebuffer fb(2, 2);
    fb.clear({0, 0, 0, 1});
    fb.depthTest(0, 0, 0.2f);
    fb.clear({0, 0, 0, 1});
    // After clear, even a far fragment passes again.
    EXPECT_TRUE(fb.depthTest(0, 0, 0.99f));
}

TEST(FramebufferTest, WriteColorSticks)
{
    Framebuffer fb(4, 4);
    fb.clear({0, 0, 0, 1});
    fb.writeColor(2, 3, {1, 0.5f, 0.25f, 1});
    EXPECT_FLOAT_EQ(fb.colorAt(2, 3).r, 1.0f);
    EXPECT_FLOAT_EQ(fb.colorAt(2, 3).g, 0.5f);
}

TEST(FramebufferTest, ArenaBackedBehavesLikeOwning)
{
    BumpArena arena;
    Framebuffer fb(8, 6, arena);
    fb.clear({0.25f, 0, 0, 1});
    EXPECT_TRUE(fb.depthTest(3, 2, 0.5f));
    EXPECT_FALSE(fb.depthTest(3, 2, 0.6f));
    fb.writeColor(3, 2, {1, 1, 1, 1});
    EXPECT_FLOAT_EQ(fb.colorAt(3, 2).r, 1.0f);
    EXPECT_FLOAT_EQ(fb.colorAt(0, 0).r, 0.25f);
    Image img = fb.toImage();
    EXPECT_FLOAT_EQ(img.at(3, 2).r, 1.0f);
    EXPECT_FLOAT_EQ(img.at(7, 5).r, 0.25f);
}

TEST(FramebufferTest, PixelAddressesAreDistinctAndOrdered)
{
    Framebuffer fb(16, 16);
    Addr a = fb.pixelAddr(0, 0);
    Addr b = fb.pixelAddr(1, 0);
    Addr c = fb.pixelAddr(0, 1);
    EXPECT_EQ(b - a, 4u);
    EXPECT_EQ(c - a, 16u * 4);
}
