/**
 * @file
 * Companion TU for tracing_test compiled with PARGPU_TRACING_DISABLED, so
 * the test can prove the macros expand to nothing in disabled builds even
 * while the rest of the binary has tracing compiled in.
 */

#define PARGPU_TRACING_DISABLED 1
#include "common/tracing.hh"

namespace pargpu_test
{

/** Exercise every trace macro in a disabled TU; must record nothing. */
void
disabledTracingBody()
{
    PARGPU_TRACE_SCOPE("test", "disabled_scope");
    PARGPU_TRACE_SCOPE_F("test", "disabled_scope_f", 7);
    PARGPU_TRACE_COUNTER("test", "disabled.counter", 42);
    PARGPU_TRACE_INSTANT("test", "disabled_instant");
}

} // namespace pargpu_test
