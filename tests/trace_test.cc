/**
 * @file
 * Unit tests for trace serialization (capture/replay round trip).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/trace.hh"

using namespace pargpu;

namespace
{

class TraceRoundTrip : public testing::Test
{
  protected:
    void
    TearDown() override
    {
        std::remove(path.c_str());
    }

    std::string path = "trace_test.pgtrace";
};

} // namespace

TEST_F(TraceRoundTrip, PreservesStructure)
{
    GameTrace original = buildGameTrace(GameId::Wolf, 320, 240, 2);
    ASSERT_TRUE(writeTrace(original, path));

    bool ok = false;
    GameTrace loaded = readTrace(path, ok);
    ASSERT_TRUE(ok);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.id, original.id);
    EXPECT_EQ(loaded.width, original.width);
    EXPECT_EQ(loaded.height, original.height);
    EXPECT_EQ(loaded.scene.draws.size(), original.scene.draws.size());
    EXPECT_EQ(loaded.scene.textures.size(),
              original.scene.textures.size());
    EXPECT_EQ(loaded.cameras.size(), original.cameras.size());
    EXPECT_EQ(loaded.recipes.size(), original.recipes.size());
}

TEST_F(TraceRoundTrip, PreservesVertexData)
{
    GameTrace original = buildGameTrace(GameId::Ut3, 320, 240, 1);
    ASSERT_TRUE(writeTrace(original, path));
    bool ok = false;
    GameTrace loaded = readTrace(path, ok);
    ASSERT_TRUE(ok);

    for (std::size_t d = 0; d < original.scene.draws.size(); ++d) {
        const Mesh &om = original.scene.draws[d].mesh;
        const Mesh &lm = loaded.scene.draws[d].mesh;
        ASSERT_EQ(om.vertices.size(), lm.vertices.size());
        ASSERT_EQ(om.indices.size(), lm.indices.size());
        for (std::size_t v = 0; v < om.vertices.size(); ++v) {
            EXPECT_FLOAT_EQ(om.vertices[v].pos.x, lm.vertices[v].pos.x);
            EXPECT_FLOAT_EQ(om.vertices[v].pos.z, lm.vertices[v].pos.z);
            EXPECT_FLOAT_EQ(om.vertices[v].uv.x, lm.vertices[v].uv.x);
        }
        EXPECT_EQ(om.texture_id, lm.texture_id);
        EXPECT_EQ(original.scene.draws[d].filter,
                  loaded.scene.draws[d].filter);
        EXPECT_EQ(original.scene.draws[d].backface_cull,
                  loaded.scene.draws[d].backface_cull);
        EXPECT_EQ(original.scene.draws[d].specular,
                  loaded.scene.draws[d].specular);
    }
}

TEST_F(TraceRoundTrip, RegeneratesIdenticalTextures)
{
    GameTrace original = buildGameTrace(GameId::Doom3, 320, 240, 1);
    ASSERT_TRUE(writeTrace(original, path));
    bool ok = false;
    GameTrace loaded = readTrace(path, ok);
    ASSERT_TRUE(ok);

    for (std::size_t t = 0; t < original.scene.textures.size(); ++t) {
        const TextureMap &ot = *original.scene.textures[t];
        const TextureMap &lt = *loaded.scene.textures[t];
        ASSERT_EQ(ot.width(), lt.width());
        EXPECT_EQ(ot.baseAddr(), lt.baseAddr());
        // Spot-check texel content equality.
        const MipLevel &ol = ot.level(0);
        const MipLevel &ll = lt.level(0);
        for (int i = 0; i < ol.width; i += 7) {
            EXPECT_EQ(ol.at(i, i).r, ll.at(i, i).r);
            EXPECT_EQ(ol.at(i, i).g, ll.at(i, i).g);
        }
    }
}

TEST_F(TraceRoundTrip, PreservesCameras)
{
    GameTrace original = buildGameTrace(GameId::Grid, 320, 240, 3);
    ASSERT_TRUE(writeTrace(original, path));
    bool ok = false;
    GameTrace loaded = readTrace(path, ok);
    ASSERT_TRUE(ok);
    for (std::size_t i = 0; i < original.cameras.size(); ++i) {
        EXPECT_FLOAT_EQ(original.cameras[i].eye.x, loaded.cameras[i].eye.x);
        for (int c = 0; c < 4; ++c) {
            for (int r = 0; r < 4; ++r) {
                EXPECT_FLOAT_EQ(original.cameras[i].view.m[c][r],
                                loaded.cameras[i].view.m[c][r]);
                EXPECT_FLOAT_EQ(original.cameras[i].proj.m[c][r],
                                loaded.cameras[i].proj.m[c][r]);
            }
        }
    }
}

TEST(TraceErrorTest, MissingFileFails)
{
    bool ok = true;
    readTrace("/no/such/file.pgtrace", ok);
    EXPECT_FALSE(ok);
}

TEST(TraceErrorTest, GarbageFileFails)
{
    const std::string path = "trace_test_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace", f);
    std::fclose(f);
    bool ok = true;
    readTrace(path, ok);
    std::remove(path.c_str());
    EXPECT_FALSE(ok);
}

TEST(TraceErrorTest, TruncatedFileFails)
{
    GameTrace original = buildGameTrace(GameId::Wolf, 320, 240, 1);
    const std::string full = "trace_test_full.pgtrace";
    const std::string cut = "trace_test_cut.pgtrace";
    ASSERT_TRUE(writeTrace(original, full));

    // Copy the first 100 bytes only.
    std::FILE *in = std::fopen(full.c_str(), "rb");
    std::FILE *out = std::fopen(cut.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    char buf[100];
    std::size_t n = std::fread(buf, 1, sizeof(buf), in);
    std::fwrite(buf, 1, n, out);
    std::fclose(in);
    std::fclose(out);

    bool ok = true;
    readTrace(cut, ok);
    EXPECT_FALSE(ok);
    std::remove(full.c_str());
    std::remove(cut.c_str());
}
