/**
 * @file
 * Unit tests for the PATU decision unit (Section V): scenario forcing,
 * stage-1/stage-2 checks, LOD-shift elimination and decision statistics.
 */

#include <gtest/gtest.h>

#include "core/afssim.hh"
#include "core/patu.hh"
#include "texture/procedural.hh"

using namespace pargpu;

namespace
{

AnisotropyInfo
infoWithN(int n)
{
    AnisotropyInfo info;
    info.anisoDegree = n;
    info.sampleSize = n;
    info.pMax = static_cast<float>(n);
    info.pMin = 1.0f;
    info.lodTF = std::log2(std::max(1.0f, info.pMax));
    info.lodAF = 0.0f;
    info.majorUv = {0.01f, 0.0f};
    return info;
}

PatuConfig
cfg(DesignScenario s, float threshold = 0.4f)
{
    PatuConfig c;
    c.scenario = s;
    c.threshold = threshold;
    return c;
}

// Build real AF footprints for a synthetic pixel on a real texture, with
// controllable overlap: step 0 makes all samples share one footprint.
std::vector<TrilinearSample>
footprints(int n, float step)
{
    static TextureMap tex(64, 64,
                          generateTexture(TextureKind::Noise, 64, 3));
    TextureSampler s(tex);
    std::vector<TrilinearSample> out;
    for (int i = 0; i < n; ++i)
        out.push_back(s.trilinear({0.3f + step * i, 0.5f}, 0.0f));
    return out;
}

} // namespace

TEST(PatuPreDecideTest, BaselineNeverApproximates)
{
    PatuUnit u(cfg(DesignScenario::Baseline));
    PixelDecision d = u.preDecide(infoWithN(8));
    EXPECT_FALSE(d.approximate);
    EXPECT_FALSE(d.need_distribution);
    EXPECT_EQ(d.stage, DecisionStage::Forced);
    EXPECT_EQ(d.sample_size, 8);
}

TEST(PatuPreDecideTest, NoAfAlwaysApproximates)
{
    PatuUnit u(cfg(DesignScenario::NoAF));
    PixelDecision d = u.preDecide(infoWithN(8));
    EXPECT_TRUE(d.approximate);
    EXPECT_EQ(d.stage, DecisionStage::Forced);
    EXPECT_EQ(d.sample_size, 1);
    EXPECT_FLOAT_EQ(d.lod, infoWithN(8).lodTF);
}

TEST(PatuPreDecideTest, TrivialTfBypassesChecks)
{
    PatuUnit u(cfg(DesignScenario::Patu));
    PixelDecision d = u.preDecide(infoWithN(1));
    EXPECT_TRUE(d.approximate);
    EXPECT_EQ(d.stage, DecisionStage::TrivialTf);
    EXPECT_FALSE(d.need_distribution);
}

TEST(PatuPreDecideTest, Stage1ApproximatesSmallN)
{
    // AF-SSIM(2) = (4/5)^2 = 0.64 > 0.4: approximated at stage 1.
    PatuUnit u(cfg(DesignScenario::Patu, 0.4f));
    PixelDecision d = u.preDecide(infoWithN(2));
    EXPECT_TRUE(d.approximate);
    EXPECT_EQ(d.stage, DecisionStage::SampleArea);
    EXPECT_NEAR(d.af_ssim_n, 0.64f, 1e-5f);
}

TEST(PatuPreDecideTest, Stage1KeepsLargeNForDistribution)
{
    // AF-SSIM(8) = (16/65)^2 ~ 0.0606 < 0.4: goes to stage 2.
    PatuUnit u(cfg(DesignScenario::Patu, 0.4f));
    PixelDecision d = u.preDecide(infoWithN(8));
    EXPECT_FALSE(d.approximate);
    EXPECT_TRUE(d.need_distribution);
}

TEST(PatuPreDecideTest, AfSsimNScenarioSkipsDistribution)
{
    PatuUnit u(cfg(DesignScenario::AfSsimN, 0.4f));
    PixelDecision d = u.preDecide(infoWithN(8));
    EXPECT_FALSE(d.approximate);
    EXPECT_FALSE(d.need_distribution);
    EXPECT_EQ(d.stage, DecisionStage::FullAf);
}

TEST(PatuPreDecideTest, ThresholdZeroDisablesAfEntirely)
{
    // Every prediction exceeds 0: everything is approximated, matching
    // the paper's "threshold = 0 is the no-AF case".
    PatuUnit u(cfg(DesignScenario::Patu, 0.0f));
    for (int n = 2; n <= 16; ++n) {
        PixelDecision d = u.preDecide(infoWithN(n));
        EXPECT_TRUE(d.approximate) << "N=" << n;
        EXPECT_EQ(d.stage, DecisionStage::SampleArea);
    }
}

TEST(PatuPreDecideTest, ThresholdOneKeepsBaseline)
{
    // No prediction can exceed 1: nothing with N > 1 is approximated at
    // stage 1 (threshold = 1 is the baseline case).
    PatuUnit u(cfg(DesignScenario::Patu, 1.0f));
    for (int n = 2; n <= 16; ++n) {
        PixelDecision d = u.preDecide(infoWithN(n));
        EXPECT_FALSE(d.approximate) << "N=" << n;
    }
}

TEST(PatuLodTest, PatuReusesAfLodForApproximatedPixels)
{
    // Section V-C(2): full PATU moves TF's sampling level to AF's.
    PatuUnit u(cfg(DesignScenario::Patu, 0.4f));
    AnisotropyInfo info = infoWithN(2);
    PixelDecision d = u.preDecide(info);
    ASSERT_TRUE(d.approximate);
    EXPECT_FLOAT_EQ(d.lod, info.lodAF);
}

TEST(PatuLodTest, PlainPredictionsUseTfLod)
{
    PatuUnit u(cfg(DesignScenario::AfSsimNTxds, 0.4f));
    AnisotropyInfo info = infoWithN(2);
    PixelDecision d = u.preDecide(info);
    ASSERT_TRUE(d.approximate);
    EXPECT_FLOAT_EQ(d.lod, info.lodTF);
}

TEST(PatuDistributionTest, FullOverlapApproximates)
{
    PatuUnit u(cfg(DesignScenario::Patu, 0.4f));
    AnisotropyInfo info = infoWithN(8);
    PixelDecision d = u.preDecide(info);
    ASSERT_TRUE(d.need_distribution);
    // All 8 samples share one texel set: Txds = 1, AF-SSIM = 1 > 0.4.
    u.finishDistribution(d, info, footprints(8, 0.0f));
    EXPECT_TRUE(d.approximate);
    EXPECT_EQ(d.stage, DecisionStage::Distribution);
    EXPECT_NEAR(d.txds_value, 1.0f, 1e-5f);
    EXPECT_EQ(d.sample_size, 1);
}

TEST(PatuDistributionTest, DisjointFootprintsKeepAf)
{
    PatuUnit u(cfg(DesignScenario::Patu, 0.4f));
    AnisotropyInfo info = infoWithN(8);
    PixelDecision d = u.preDecide(info);
    ASSERT_TRUE(d.need_distribution);
    // Large steps: every sample has its own footprint, Txds = 0.
    u.finishDistribution(d, info, footprints(8, 0.08f));
    EXPECT_FALSE(d.approximate);
    EXPECT_EQ(d.stage, DecisionStage::FullAf);
    EXPECT_NEAR(d.txds_value, 0.0f, 1e-5f);
}

TEST(PatuDistributionTest, StatsTrackDecisions)
{
    PatuUnit u(cfg(DesignScenario::Patu, 0.4f));
    AnisotropyInfo info = infoWithN(8);
    PixelDecision d1 = u.preDecide(info);
    u.finishDistribution(d1, info, footprints(8, 0.0f));
    PixelDecision d2 = u.preDecide(info);
    u.finishDistribution(d2, info, footprints(8, 0.08f));
    u.preDecide(infoWithN(1));
    u.preDecide(infoWithN(2));

    EXPECT_EQ(u.stats().counter("patu.approx_stage2"), 1u);
    EXPECT_EQ(u.stats().counter("patu.full_af"), 1u);
    EXPECT_EQ(u.stats().counter("patu.trivial_tf"), 1u);
    EXPECT_EQ(u.stats().counter("patu.approx_stage1"), 1u);
    EXPECT_EQ(u.stats().counter("patu.pixels"), 4u);
}

TEST(PatuSharedSamplesTest, CountsNonFirstOccurrences)
{
    PatuUnit u(cfg(DesignScenario::Patu));
    // 5 samples all sharing one set: 4 shared.
    EXPECT_EQ(u.countSharedSamples(footprints(5, 0.0f)), 4);
    // All distinct: 0 shared.
    EXPECT_EQ(u.countSharedSamples(footprints(5, 0.08f)), 0);
}

TEST(PatuScenarioNameTest, AllScenariosNamed)
{
    EXPECT_STREQ(scenarioName(DesignScenario::Baseline), "Baseline");
    EXPECT_STREQ(scenarioName(DesignScenario::NoAF), "No-AF");
    EXPECT_STREQ(scenarioName(DesignScenario::AfSsimN), "AF-SSIM(N)");
    EXPECT_STREQ(scenarioName(DesignScenario::AfSsimNTxds),
                 "AF-SSIM(N)+(Txds)");
    EXPECT_STREQ(scenarioName(DesignScenario::Patu), "PATU");
}

TEST(PatuAddrSetTest, ExtractsSampleAddresses)
{
    auto fp = footprints(1, 0.0f);
    TexelAddrSet set = addrSetOf(fp[0]);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(set[i], fp[0].texels[i].addr);
}
