/**
 * @file
 * BumpArena unit tests plus the steady-state guarantee the simulator's
 * arena-backed scratch depends on: after a warm-up frame, rendering
 * performs zero heap allocations for per-frame scratch (blockAllocs()
 * stops growing) and the arena.* stats are reproducible.
 */

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "common/arena.hh"
#include "scenes/meshes.hh"
#include "sim/pipeline.hh"
#include "texture/procedural.hh"

using namespace pargpu;

namespace
{

struct alignas(64) CacheLineObj
{
    std::uint8_t bytes[64];
};

Scene
groundScene()
{
    Scene scene;
    int tex = scene.addTexture(std::make_unique<TextureMap>(
        128, 128, generateTexture(TextureKind::Checker, 128, 3)));
    DrawCall d;
    d.mesh = makeGrid({-50, 0, 10}, {100, 0, 0}, {0, 0, -200}, 4, 8,
                      30.0f, 60.0f, tex);
    d.filter = FilterMode::Anisotropic;
    scene.draws.push_back(std::move(d));
    return scene;
}

Camera
standingCamera(int w, int h)
{
    Camera cam;
    cam.eye = {0, 1.8f, 0};
    cam.view = Mat4::lookAt(cam.eye, {0, 1.4f, -10}, {0, 1, 0});
    cam.proj = Mat4::perspective(1.1f, static_cast<float>(w) / h, 0.3f,
                                 400.0f);
    return cam;
}

} // namespace

TEST(ArenaTest, RespectsAlignment)
{
    BumpArena arena;
    // Interleave allocations of different alignments so the bump offset
    // is misaligned before each aligned request.
    for (int i = 0; i < 64; ++i) {
        std::span<std::uint8_t> b =
            arena.allocSpan<std::uint8_t>(static_cast<std::size_t>(i) % 7 +
                                          1);
        ASSERT_FALSE(b.empty());
        std::span<double> d = arena.allocSpan<double>(3);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) %
                      alignof(double),
                  0u);
        std::span<CacheLineObj> c = arena.allocSpan<CacheLineObj>(2);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % 64, 0u);
    }
}

TEST(ArenaTest, ValueInitializesAllocSpan)
{
    BumpArena arena(1024);
    // Dirty a block, reset, and re-allocate: allocSpan must hand back
    // zeroed ints even over recycled storage...
    std::span<int> first = arena.allocSpan<int>(100);
    for (int &v : first)
        v = -1;
    arena.reset();
    std::span<int> second = arena.allocSpan<int>(100);
    for (int v : second)
        ASSERT_EQ(v, 0);
    // ...while allocSpanUninit reuses the bytes as-is (same storage,
    // no construction) — the contract its hot-path callers rely on.
    arena.reset();
    std::span<int> third = arena.allocSpanUninit<int>(100);
    EXPECT_EQ(static_cast<void *>(third.data()),
              static_cast<void *>(second.data()));
}

TEST(ArenaTest, ResetRecyclesBlocks)
{
    BumpArena arena(4096);
    std::span<float> a = arena.allocSpan<float>(512);
    float *first_ptr = a.data();
    std::size_t blocks = arena.blockAllocs();
    std::size_t cap = arena.capacityBytes();

    for (int frame = 0; frame < 50; ++frame) {
        arena.reset();
        EXPECT_EQ(arena.usedBytes(), 0u);
        std::span<float> b = arena.allocSpan<float>(512);
        // Identical allocation sequence → identical placement: the
        // recycled block is bumped from the start again.
        EXPECT_EQ(b.data(), first_ptr);
        EXPECT_EQ(arena.blockAllocs(), blocks);
        EXPECT_EQ(arena.capacityBytes(), cap);
    }
}

TEST(ArenaTest, TracksUsedAndHighWater)
{
    BumpArena arena;
    EXPECT_EQ(arena.usedBytes(), 0u);
    EXPECT_EQ(arena.highWaterBytes(), 0u);
    EXPECT_EQ(arena.lifetimeBytes(), 0u);

    arena.allocSpan<std::uint8_t>(100);
    EXPECT_EQ(arena.usedBytes(), 100u);
    arena.allocSpan<std::uint8_t>(50);
    EXPECT_EQ(arena.usedBytes(), 150u);
    EXPECT_EQ(arena.highWaterBytes(), 150u);
    EXPECT_EQ(arena.lifetimeBytes(), 150u);

    // The high-water mark survives resets; usedBytes does not, and
    // lifetimeBytes keeps integrating.
    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    EXPECT_EQ(arena.highWaterBytes(), 150u);
    EXPECT_EQ(arena.lifetimeBytes(), 150u);

    arena.allocSpan<std::uint8_t>(60);
    EXPECT_EQ(arena.highWaterBytes(), 150u);
    arena.allocSpan<std::uint8_t>(200);
    EXPECT_EQ(arena.usedBytes(), 260u);
    EXPECT_EQ(arena.highWaterBytes(), 260u);
    EXPECT_EQ(arena.lifetimeBytes(), 410u);
}

TEST(ArenaTest, SteadyStateStopsAllocatingBlocks)
{
    // The zero-per-frame-allocation guard at the arena level: once a
    // "frame" worth of scratch has been carved, repeating the identical
    // sequence never touches the heap again.
    BumpArena arena(8 * 1024);
    auto frame = [&arena] {
        arena.reset();
        for (int q = 0; q < 32; ++q) {
            arena.allocSpanUninit<float>(257);
            arena.allocSpan<std::uint64_t>(63);
            arena.allocSpan<CacheLineObj>(5);
        }
    };
    frame(); // warm-up: blocks are allocated here
    const std::size_t warm_blocks = arena.blockAllocs();
    const std::size_t warm_cap = arena.capacityBytes();
    const std::size_t warm_used = arena.usedBytes();
    EXPECT_GT(warm_blocks, 0u);
    for (int f = 0; f < 100; ++f) {
        frame();
        ASSERT_EQ(arena.blockAllocs(), warm_blocks) << "frame " << f;
        ASSERT_EQ(arena.capacityBytes(), warm_cap) << "frame " << f;
        ASSERT_EQ(arena.usedBytes(), warm_used) << "frame " << f;
    }
}

TEST(ArenaTest, ZeroSizedSpansAreEmpty)
{
    BumpArena arena;
    EXPECT_TRUE(arena.allocSpan<int>(0).empty());
    EXPECT_TRUE(arena.allocSpanUninit<int>(0).empty());
    EXPECT_EQ(arena.usedBytes(), 0u);
    EXPECT_EQ(arena.blockAllocs(), 0u);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock)
{
    BumpArena arena(1024);
    std::span<std::uint8_t> big = arena.allocSpan<std::uint8_t>(100000);
    ASSERT_EQ(big.size(), 100000u);
    EXPECT_GE(arena.capacityBytes(), 100000u);
    // The block is recycled like any other.
    arena.reset();
    std::size_t blocks = arena.blockAllocs();
    std::span<std::uint8_t> again = arena.allocSpan<std::uint8_t>(100000);
    EXPECT_EQ(again.data(), big.data());
    EXPECT_EQ(arena.blockAllocs(), blocks);
}

// The simulator-level steady-state guarantee: re-rendering the same
// frame reports identical arena.* numbers every time, and the arena
// counters are exactly zero with PARGPU_ARENA=0.
TEST(ArenaTest, SimulatorArenaStatsAreSteady)
{
    setArenaScratchForTesting(1);
    GpuConfig cfg;
    GpuSimulator sim(cfg);
    Scene scene = groundScene();
    Camera cam = standingCamera(96, 80);

    FrameStats warm = sim.renderFrame(scene, cam, 96, 80).stats;
    EXPECT_GT(warm.arena_frame_bytes, 0u);
    EXPECT_GT(warm.arena_high_water, 0u);
    for (int f = 0; f < 3; ++f) {
        FrameStats fs = sim.renderFrame(scene, cam, 96, 80).stats;
        // Same frame → same scratch demand; the high-water mark has
        // plateaued by construction (no frame exceeds the first).
        EXPECT_EQ(fs.arena_frame_bytes, warm.arena_frame_bytes);
        EXPECT_EQ(fs.arena_high_water, warm.arena_high_water);
    }

    setArenaScratchForTesting(0);
    GpuSimulator heap_sim(cfg);
    FrameStats off = heap_sim.renderFrame(scene, cam, 96, 80).stats;
    EXPECT_EQ(off.arena_frame_bytes, 0u);
    EXPECT_EQ(off.arena_high_water, 0u);
    setArenaScratchForTesting(-1);
}
