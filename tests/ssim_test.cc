/**
 * @file
 * Unit tests for the SSIM quality layer (Eq. 1-2 of the paper).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "quality/ssim.hh"

using namespace pargpu;

namespace
{

Image
noiseImage(int w, int h, std::uint64_t seed)
{
    Image img(w, h);
    SplitMix64 rng(seed);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float v = rng.nextFloat();
            img.at(x, y) = Color4f{v, v, v, 1.0f};
        }
    }
    return img;
}

Image
gradientImage(int w, int h)
{
    Image img(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            img.at(x, y) = Color4f{x / static_cast<float>(w),
                                   y / static_cast<float>(h), 0.5f, 1.0f};
    return img;
}

} // namespace

TEST(SsimTest, IdenticalImagesScoreOne)
{
    Image a = noiseImage(64, 48, 1);
    EXPECT_NEAR(mssim(a, a), 1.0, 1e-6);
}

TEST(SsimTest, SymmetricInArguments)
{
    Image a = noiseImage(48, 48, 1);
    Image b = noiseImage(48, 48, 2);
    EXPECT_NEAR(mssim(a, b), mssim(b, a), 1e-9);
}

TEST(SsimTest, BoundedAboveByOne)
{
    Image a = gradientImage(64, 64);
    Image b = noiseImage(64, 64, 3);
    double v = mssim(a, b);
    EXPECT_LE(v, 1.0);
    EXPECT_GE(v, -1.0);
}

TEST(SsimTest, IndependentNoiseScoresLow)
{
    Image a = noiseImage(96, 96, 10);
    Image b = noiseImage(96, 96, 20);
    EXPECT_LT(mssim(a, b), 0.2);
}

TEST(SsimTest, SmallDistortionScoresHigherThanLarge)
{
    Image ref = gradientImage(64, 64);
    Image small_d = ref, large_d = ref;
    SplitMix64 rng(5);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            float n = rng.nextFloat() - 0.5f;
            Color4f &s = small_d.at(x, y);
            s.r = std::clamp(s.r + 0.02f * n, 0.0f, 1.0f);
            Color4f &l = large_d.at(x, y);
            l.r = std::clamp(l.r + 0.4f * n, 0.0f, 1.0f);
        }
    }
    EXPECT_GT(mssim(ref, small_d), mssim(ref, large_d));
}

TEST(SsimTest, BlurredImageScoresBelowIdentical)
{
    // Blurring is exactly the artifact disabling AF introduces; SSIM must
    // see it.
    Image ref = noiseImage(64, 64, 7);
    Image blur(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            Color4f acc{0, 0, 0, 0};
            int cnt = 0;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    int sx = std::clamp(x + dx, 0, 63);
                    int sy = std::clamp(y + dy, 0, 63);
                    acc += ref.at(sx, sy);
                    ++cnt;
                }
            }
            blur.at(x, y) = acc * (1.0f / cnt);
        }
    }
    double v = mssim(ref, blur);
    EXPECT_LT(v, 0.9);
    EXPECT_GT(v, 0.0);
}

TEST(SsimTest, MapHasOneValuePerPixel)
{
    Image a = noiseImage(32, 24, 1);
    Image b = noiseImage(32, 24, 2);
    std::vector<float> map = ssimMap(a, b);
    EXPECT_EQ(map.size(), 32u * 24u);
}

TEST(SsimTest, MapLocalizesDistortion)
{
    // Distort only the right half; the left half's SSIM stays near 1.
    Image a = gradientImage(64, 64);
    Image b = a;
    SplitMix64 rng(9);
    for (int y = 0; y < 64; ++y) {
        for (int x = 32; x < 64; ++x) {
            b.at(x, y).r =
                std::clamp(b.at(x, y).r + rng.nextFloat() - 0.5f,
                           0.0f, 1.0f);
        }
    }
    std::vector<float> map = ssimMap(a, b);
    double left = 0.0, right = 0.0;
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 20; ++x)
            left += map[y * 64 + x];
        for (int x = 44; x < 64; ++x)
            right += map[y * 64 + x];
    }
    EXPECT_GT(left / (64 * 20), right / (64 * 20) + 0.2);
}

TEST(SsimTest, MssimOfMapAveragesCorrectly)
{
    EXPECT_DOUBLE_EQ(mssimOfMap({1.0f, 0.5f, 0.0f}),
                     0.5);
    EXPECT_DOUBLE_EQ(mssimOfMap({}), 0.0);
}

TEST(SsimTest, MapImageIsLighterWhereSimilar)
{
    std::vector<float> map = {1.0f, 0.0f};
    Image vis = ssimMapImage(map, 2, 1);
    EXPECT_GT(vis.at(0, 0).r, vis.at(1, 0).r);
}

TEST(SsimDeathTest, MismatchedDimensionsFatal)
{
    Image a(8, 8), b(8, 4);
    EXPECT_EXIT(mssim(a, b), testing::ExitedWithCode(1), "differ");
}

TEST(SsimDeathTest, EvenWindowRejected)
{
    Image a(8, 8), b(8, 8);
    SsimParams p;
    p.window = 10;
    EXPECT_EXIT(ssimMap(a, b, p), testing::ExitedWithCode(1), "odd");
}

TEST(MseTest, ZeroForIdentical)
{
    Image a = noiseImage(16, 16, 1);
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(MseTest, KnownDifference)
{
    Image a(4, 4, Color4f{0, 0, 0, 1});
    Image b(4, 4, Color4f{1, 1, 1, 1});
    // Luma difference is 1 everywhere.
    EXPECT_NEAR(mse(a, b), 1.0, 1e-6);
}

TEST(PsnrTest, InfiniteForIdentical)
{
    Image a = gradientImage(16, 16);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(PsnrTest, HigherForSmallerError)
{
    Image ref(16, 16, Color4f{0.5f, 0.5f, 0.5f, 1});
    Image near_img = ref;
    Image far_img = ref;
    near_img.at(0, 0).r = 0.6f;
    far_img.at(0, 0).r = 1.0f;
    EXPECT_GT(psnr(ref, near_img), psnr(ref, far_img));
}
