/**
 * @file
 * Tests for the FilterPolicy family (docs/FILTERING.md): registry/name
 * round-trips, typed config validation, the default policy's equivalence
 * with the explicit PATU flow, per-policy activity counters, registry
 * schema parity across policies, and the unbiasedness of the stochastic
 * texel estimators.
 */

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "harness/metrics.hh"
#include "harness/runner.hh"
#include "texture/filter_policy.hh"
#include "texture/procedural.hh"

using namespace pargpu;

namespace
{

GameTrace
smallTrace()
{
    // NFS: a road at a grazing angle — reliably anisotropy-heavy, so the
    // policies actually diverge on it.
    return buildGameTrace(GameId::Nfs, 96, 80, 2);
}

RunResult
runPolicy(const GameTrace &trace, FilterPolicyId policy,
          bool keep_images = false)
{
    RunConfig cfg;
    cfg.filter_policy = policy;
    cfg.keep_images = keep_images;
    cfg.threads = 1;
    return runTrace(trace, cfg);
}

std::string
registryDump(const RunResult &run)
{
    StatRegistry reg;
    buildRunRegistry(run, reg);
    return reg.snapshot().toJson().dump(1);
}

} // namespace

TEST(FilterPolicyTest, RegistryNamesRoundTrip)
{
    std::set<std::string> seen;
    for (const FilterPolicyDesc &d : filterPolicyRegistry()) {
        FilterPolicyId parsed;
        ASSERT_TRUE(parseFilterPolicy(d.name, parsed)) << d.name;
        EXPECT_EQ(parsed, d.id) << d.name;
        EXPECT_STREQ(filterPolicyName(d.id), d.name);
        EXPECT_TRUE(isKnownFilterPolicy(d.id));
        EXPECT_TRUE(seen.insert(d.name).second)
            << "duplicate policy name " << d.name;
    }
    EXPECT_GE(filterPolicyRegistry().size(), 4u);
}

TEST(FilterPolicyTest, ParseRejectsUnknownNames)
{
    FilterPolicyId id = FilterPolicyId::Patu;
    EXPECT_FALSE(parseFilterPolicy("", id));
    EXPECT_FALSE(parseFilterPolicy("nearest", id));
    EXPECT_FALSE(parseFilterPolicy("PATU", id));
    EXPECT_FALSE(parseFilterPolicy("stf", id));
    EXPECT_EQ(id, FilterPolicyId::Patu); // Untouched on failure.
}

TEST(FilterPolicyTest, ValidateRejectsUnregisteredPolicy)
{
    RunConfig cfg;
    cfg.filter_policy = static_cast<FilterPolicyId>(99);
    std::vector<ConfigError> errors = cfg.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors.front(), ConfigError::BadFilterPolicy);
    EXPECT_NE(configErrorMessage(errors.front()), nullptr);
    EXPECT_NE(std::string(configErrorMessage(errors.front())).find("patu"),
              std::string::npos);
}

TEST(FilterPolicyTest, DefaultIsPatuWithoutEnvOverride)
{
    if (std::getenv("PARGPU_FILTER_POLICY") != nullptr)
        GTEST_SKIP() << "PARGPU_FILTER_POLICY overrides the default";
    EXPECT_EQ(RunConfig{}.filter_policy, FilterPolicyId::Patu);
    EXPECT_EQ(defaultFilterPolicy(), FilterPolicyId::Patu);
}

TEST(FilterPolicyTest, DefaultPolicyMatchesExplicitPatu)
{
    // The refactor contract: the default-constructed config (pre-refactor
    // behavior) and an explicit patu policy selection are the same code
    // path — frames, images and the full registry snapshot.
    if (std::getenv("PARGPU_FILTER_POLICY") != nullptr)
        GTEST_SKIP() << "PARGPU_FILTER_POLICY overrides the default";
    GameTrace trace = smallTrace();
    RunConfig def_cfg;
    def_cfg.threads = 1;
    RunResult def = runTrace(trace, def_cfg);
    RunResult patu = runPolicy(trace, FilterPolicyId::Patu, true);

    ASSERT_EQ(def.frames.size(), patu.frames.size());
    EXPECT_EQ(def.avg_cycles, patu.avg_cycles);
    EXPECT_EQ(def.total_energy_nj, patu.total_energy_nj);
    EXPECT_EQ(registryDump(def), registryDump(patu));
    ASSERT_EQ(def.images.size(), patu.images.size());
    for (std::size_t f = 0; f < def.images.size(); ++f) {
        const std::vector<Color4f> &a = def.images[f].pixels();
        const std::vector<Color4f> &b = patu.images[f].pixels();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].r, b[i].r);
            ASSERT_EQ(a[i].g, b[i].g);
            ASSERT_EQ(a[i].b, b[i].b);
        }
    }
}

TEST(FilterPolicyTest, PolicyCountersReportActivity)
{
    GameTrace trace = smallTrace();
    RunResult patu = runPolicy(trace, FilterPolicyId::Patu);
    RunResult stf = runPolicy(trace, FilterPolicyId::StfUniform);
    RunResult fas = runPolicy(trace, FilterPolicyId::FilterAfterShading);

    auto total = [](const RunResult &r, auto field) {
        std::uint64_t t = 0;
        for (const FrameStats &f : r.frames)
            t += f.*field;
        return t;
    };

    // PATU reports no policy-specific activity.
    EXPECT_EQ(total(patu, &FrameStats::stf_samples), 0u);
    EXPECT_EQ(total(patu, &FrameStats::fas_quads), 0u);

    // STF fetches one texel per AF sample: stf_samples > 0 and a texel
    // count well below the exact path's 8-per-sample footprints.
    EXPECT_GT(total(stf, &FrameStats::stf_samples), 0u);
    EXPECT_EQ(total(stf, &FrameStats::fas_quads), 0u);
    EXPECT_LT(total(stf, &FrameStats::texels),
              total(patu, &FrameStats::texels));

    // FAS filters whole quads; it fetches fewer texels than full AF.
    EXPECT_GT(total(fas, &FrameStats::fas_quads), 0u);
    EXPECT_EQ(total(fas, &FrameStats::stf_samples), 0u);
    EXPECT_LT(total(fas, &FrameStats::texels),
              total(patu, &FrameStats::texels));
}

TEST(FilterPolicyTest, RegistryKeySetIdenticalAcrossPolicies)
{
    // The schema contract scripts/check.sh enforces end-to-end: policy
    // selection changes values, never the exported key set (policy
    // counters are emitted unconditionally).
    GameTrace trace = smallTrace();
    std::set<std::string> ref_keys;
    bool first = true;
    for (const FilterPolicyDesc &d : filterPolicyRegistry()) {
        StatRegistry reg;
        RunResult run = runPolicy(trace, d.id);
        buildRunRegistry(run, reg);
        StatSnapshot snap = reg.snapshot();
        std::set<std::string> keys;
        for (const auto &c : snap.counters)
            keys.insert("counters." + c.first);
        for (const auto &s : snap.scalars)
            keys.insert("scalars." + s.first);
        // texunit.policy reports the policy that ran.
        bool found = false;
        for (const auto &s : snap.scalars) {
            if (s.first == "texunit.policy") {
                EXPECT_EQ(s.second, static_cast<double>(d.id)) << d.name;
                found = true;
            }
        }
        EXPECT_TRUE(found) << "texunit.policy missing under " << d.name;
        if (first) {
            ref_keys = keys;
            first = false;
        } else {
            EXPECT_EQ(keys, ref_keys) << "key set drift under " << d.name;
        }
    }
}

TEST(FilterPolicyTest, StochasticPoliciesDifferButReuseAddresses)
{
    // The three STF variants draw different noise (different hash
    // streams), so their images differ — but all visit the same sample
    // positions, so the address-pipeline counters agree exactly.
    GameTrace trace = smallTrace();
    RunResult uni = runPolicy(trace, FilterPolicyId::StfUniform, true);
    RunResult blue = runPolicy(trace, FilterPolicyId::StfBlue, true);
    EXPECT_EQ(uni.frames[0].addr_ops, blue.frames[0].addr_ops);
    EXPECT_EQ(uni.frames[0].stf_samples, blue.frames[0].stf_samples);

    bool any_diff = false;
    const std::vector<Color4f> &a = uni.images[0].pixels();
    const std::vector<Color4f> &b = blue.images[0].pixels();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size() && !any_diff; ++i)
        any_diff = a[i].r != b[i].r || a[i].g != b[i].g;
    EXPECT_TRUE(any_diff) << "uniform and blue noise produced identical "
                             "frames";
}

TEST(FilterPolicyTest, StfEstimatorsAreUnbiased)
{
    // Stratified integration over the variate: averaging the single-texel
    // estimator across u = (k + 0.5)/N must converge to the exact
    // trilinear color, for both selection schemes (the estimators were
    // constructed to have that expectation).
    TextureMap tex(64, 64, generateTexture(TextureKind::Noise, 64, 7));
    TextureSampler sampler(tex);
    const Vec2 uv{0.37f, 0.61f};
    const float lod = 1.3f;
    const LodSelect sel = sampler.selectLod(lod);
    TrilinearSample exact_s;
    const Color4f exact =
        sampler.filterTrilinearInto(uv, lod, exact_s, nullptr);

    for (bool weighted : {false, true}) {
        Color4f acc{0.0f, 0.0f, 0.0f, 0.0f};
        const int n = 4096;
        for (int k = 0; k < n; ++k) {
            const float u =
                (static_cast<float>(k) + 0.5f) / static_cast<float>(n);
            StfTexelChoice c = stfSelectTexel(tex, uv, sel, weighted, u);
            acc += c.estimator * (1.0f / static_cast<float>(n));
        }
        EXPECT_NEAR(acc.r, exact.r, 5e-3f) << "weighted=" << weighted;
        EXPECT_NEAR(acc.g, exact.g, 5e-3f) << "weighted=" << weighted;
        EXPECT_NEAR(acc.b, exact.b, 5e-3f) << "weighted=" << weighted;
    }
}

TEST(FilterPolicyTest, StfSampleUStaysInUnitInterval)
{
    for (FilterPolicyId id : {FilterPolicyId::StfUniform,
                              FilterPolicyId::StfBlue,
                              FilterPolicyId::StfWeighted}) {
        for (int px = 0; px < 7; ++px)
            for (int py = 0; py < 7; ++py)
                for (int s = 0; s < 16; ++s) {
                    const float u = stfSampleU(id, px, py, s, 0xDEADBEEFu);
                    ASSERT_GE(u, 0.0f);
                    ASSERT_LT(u, 1.0f);
                }
    }
}

TEST(FilterPolicyTest, FrameSeedVariesBlueNoisePerFrame)
{
    // stf_blue re-seeds its Cranley-Patterson rotation from the frame
    // seed: the same pixel must see different variates across frames.
    const float u0 = stfSampleU(FilterPolicyId::StfBlue, 5, 9, 0, 1u);
    const float u1 = stfSampleU(FilterPolicyId::StfBlue, 5, 9, 0, 2u);
    EXPECT_NE(u0, u1);
}
